// Conway's Life as a rule program, rendered per generation.
//
// Every cell of a generation is one instantiation; the PARULEL engine
// fires the whole board per cycle — watch `fired` equal n*n each cycle.
//
// Usage: life_demo [n] [generations] [seed]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "parulel.hpp"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 12;
  const int gens = argc > 2 ? std::atoi(argv[2]) : 6;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 42;

  const auto workload = parulel::workloads::make_life(n, gens, seed);
  const parulel::Program program =
      parulel::parse_program(workload.source);

  parulel::EngineConfig cfg;
  cfg.threads = parulel::ThreadPool::default_threads();
  cfg.matcher = parulel::MatcherKind::ParallelTreat;
  cfg.trace_cycles = true;
  parulel::ParallelEngine engine(program, cfg);
  engine.assert_initial_facts();
  const parulel::RunStats stats = engine.run();

  std::cout << workload.description << "\n" << stats.summary() << "\n";

  // Render each generation from the accumulated cell facts.
  const auto& wm = engine.wm();
  const auto cell_t =
      *program.schema.find(program.symbols->intern("cell"));
  std::vector<std::vector<char>> boards(
      static_cast<std::size_t>(gens + 1),
      std::vector<char>(static_cast<std::size_t>(n * n), '.'));
  for (parulel::FactId id : wm.extent(cell_t)) {
    const parulel::FactView f = wm.view(id);
    const auto gen = f.slot(1).as_int();
    if (gen > gens) continue;
    if (f.slot(2) == parulel::Value::integer(1)) {
      boards[static_cast<std::size_t>(gen)]
            [static_cast<std::size_t>(f.slot(0).as_int())] = '#';
    }
  }
  for (int g = 0; g <= gens; ++g) {
    std::cout << "\ngeneration " << g;
    if (g < static_cast<int>(stats.per_cycle.size())) {
      std::cout << "  (cycle fired "
                << stats.per_cycle[static_cast<std::size_t>(g)].fired
                << " instantiations)";
    }
    std::cout << "\n";
    for (int x = 0; x < n; ++x) {
      std::cout << "  ";
      for (int y = 0; y < n; ++y) {
        std::cout << boards[static_cast<std::size_t>(g)]
                           [static_cast<std::size_t>(x * n + y)];
      }
      std::cout << "\n";
    }
  }
  return 0;
}
