; Sealed-bid auction: meta-rules as programmable conflict resolution.
;
;   parulel_cli auction.clp --engine par --trace --dump-wm
;
; Every bid proposes a win; the meta-rule redacts every proposal except
; the highest bid per item (ties: earliest instantiation). Exactly one
; `won` fact per item survives — the kind of "pick the best, atomically,
; per cycle" logic OPS5 buried in its conflict-resolution strategy and
; PARULEL lets you write as rules.

(deftemplate bid (slot item) (slot bidder) (slot amount))
(deftemplate won (slot item) (slot bidder) (slot amount))

(defrule award
  (bid (item ?i) (bidder ?b) (amount ?amt))
  (not (won (item ?i)))
  =>
  (assert (won (item ?i) (bidder ?b) (amount ?amt))))

(defmetarule highest-bid-wins
  (inst-award (id ?x) (i ?item) (amt ?a1))
  (inst-award (id ?y) (i ?item) (amt ?a2))
  (test (or (> ?a1 ?a2) (and (== ?a1 ?a2) (< ?x ?y))))
  =>
  (redact ?y))

(deffacts bids
  (bid (item painting) (bidder ada)     (amount 300))
  (bid (item painting) (bidder grace)   (amount 450))
  (bid (item painting) (bidder edsger)  (amount 450))
  (bid (item clock)    (bidder ada)     (amount 120))
  (bid (item clock)    (bidder barbara) (amount 80))
  (bid (item rug)      (bidder edsger)  (amount 60)))
