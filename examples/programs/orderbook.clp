; Order-matching book: a long-lived session fed order batches.
;
; Built for the rule service's incremental ingestion path. Drive it
; through the --serve line protocol, streaming orders in and running the
; retained matcher between batches:
;
;   printf '%s\n' \
;     'open book examples/programs/orderbook.clp' \
;     'run book' \
;     'assert book buy 101 acme 55 10' \
;     'assert book buy 102 acme 48 20' \
;     'run book' \
;     'query book trade sym=acme' \
;     'stats book' \
;     'quit' | ./parulel_cli --serve
;
; Each `run` feeds only the orders asserted since the last fixpoint into
; the TREAT network (`stats` shows external_deltas growing while
; rebuilds stays 0).
;
; Matching logic: a buy crosses a sell of the same symbol when its limit
; price meets the ask. All crossing pairs become candidate instantiations
; in one cycle; the meta-rules redact all but the best fill per order —
; each buy takes the cheapest compatible ask (ties: lowest instantiation
; id), and each sell fills at most one buy per cycle. Matched orders are
; settled (retracted) so resting depth only ever shrinks by trade.

(deftemplate buy   (slot id) (slot sym) (slot px) (slot qty))
(deftemplate sell  (slot id) (slot sym) (slot px) (slot qty))
(deftemplate trade (slot bid) (slot ask) (slot sym) (slot px) (slot qty))

(defrule cross
  (buy  (id ?b) (sym ?s) (px ?bp) (qty ?q))
  (sell (id ?a) (sym ?s) (px ?ap))
  (test (>= ?bp ?ap))
  (not (trade (bid ?b)))
  (not (trade (ask ?a)))
  =>
  (assert (trade (bid ?b) (ask ?a) (sym ?s) (px ?ap) (qty ?q))))

; Price-time priority, per cycle: a buy keeps only its cheapest ask.
(defmetarule best-ask-per-buy
  (inst-cross (id ?x) (b ?buy) (ap ?p1))
  (inst-cross (id ?y) (b ?buy) (ap ?p2))
  (test (or (< ?p1 ?p2) (and (== ?p1 ?p2) (< ?x ?y))))
  =>
  (redact ?y))

; One fill per resting sell per cycle.
(defmetarule one-fill-per-ask
  (inst-cross (id ?x) (a ?ask))
  (inst-cross (id ?y) (a ?ask))
  (test (< ?x ?y))
  =>
  (redact ?y))

; Settle: a trade consumes both sides of the book.
(defrule settle
  (trade (bid ?b) (ask ?a))
  ?buy  <- (buy (id ?b))
  ?sell <- (sell (id ?a))
  =>
  (retract ?buy)
  (retract ?sell))

; Resting book at open: asks only, so nothing crosses until buys arrive.
(deffacts resting-book
  (sell (id 1) (sym acme) (px 50) (qty 10))
  (sell (id 2) (sym acme) (px 52) (qty 10))
  (sell (id 3) (sym acme) (px 57) (qty 5))
  (sell (id 4) (sym globex) (px 21) (qty 40)))
