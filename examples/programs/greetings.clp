; Hello-world: everyone greets everyone else, once, in parallel.
;
;   parulel_cli greetings.clp --engine par --trace
;
; All greetings happen in ONE cycle under PARULEL semantics; the
; sequential engine needs one cycle per pair.

(deftemplate person (slot name))
(deftemplate greeted (slot from) (slot to))

(defrule greet
  (person (name ?a))
  (person (name ?b))
  (test (!= ?a ?b))
  (not (greeted (from ?a) (to ?b)))
  =>
  (printout ?a " greets " ?b)
  (assert (greeted (from ?a) (to ?b))))

(deffacts people
  (person (name ada))
  (person (name grace))
  (person (name edsger))
  (person (name barbara)))
