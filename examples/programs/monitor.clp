; Session-stream monitor: security events streamed into a live session.
;
; The second --serve workload: an event feed arrives in batches (one
; batch per monitoring interval), and alert rules run over the retained
; working memory after each batch — incremental ingestion with state
; (alerts, lockouts) carried across batches.
;
;   printf '%s\n' \
;     'open mon examples/programs/monitor.clp' \
;     'run mon' \
;     'assert mon event ada fail 1' \
;     'assert mon event ada fail 2' \
;     'assert mon event ada fail 3' \
;     'run mon' \
;     'assert mon event ada login 4' \
;     'run mon' \
;     'query mon alert' \
;     'query mon incident' \
;     'quit' | ./parulel_cli --serve
;
; Three failed attempts raise an alert; a later successful login by an
; alerted user escalates to an incident. The `seq` slot is the event's
; position in the stream, so "later" is expressible without timestamps.

(deftemplate event    (slot user) (slot kind) (slot seq))
(deftemplate alert    (slot user) (slot last-seq))
(deftemplate incident (slot user) (slot seq))

; Three distinct failures by the same user, in stream order.
(defrule brute-force
  (event (user ?u) (kind fail) (seq ?a))
  (event (user ?u) (kind fail) (seq ?b))
  (event (user ?u) (kind fail) (seq ?c))
  (test (and (< ?a ?b) (< ?b ?c)))
  (not (alert (user ?u)))
  =>
  (assert (alert (user ?u) (last-seq ?c))))

; Per cycle, keep only the earliest qualifying failure triple per user.
(defmetarule first-alert-wins
  (inst-brute-force (id ?x) (u ?user) (c ?s1))
  (inst-brute-force (id ?y) (u ?user) (c ?s2))
  (test (or (< ?s1 ?s2) (and (== ?s1 ?s2) (< ?x ?y))))
  =>
  (redact ?y))

; A login after the alert window by a flagged user is an incident.
(defrule compromised-login
  (alert (user ?u) (last-seq ?l))
  (event (user ?u) (kind login) (seq ?s))
  (test (> ?s ?l))
  (not (incident (user ?u)))
  =>
  (assert (incident (user ?u) (seq ?s))))

(defmetarule first-incident-wins
  (inst-compromised-login (id ?x) (u ?user) (s ?s1))
  (inst-compromised-login (id ?y) (u ?user) (s ?s2))
  (test (or (< ?s1 ?s2) (and (== ?s1 ?s2) (< ?x ?y))))
  =>
  (redact ?y))

; Quiet baseline traffic so the first run has something to chew on.
(deffacts baseline
  (event (user grace) (kind login) (seq 1))
  (event (user grace) (kind logout) (seq 2)))
