// Quickstart: write a PARULEL program, run it sequentially (OPS5-style)
// and in parallel (PARULEL semantics), and compare cycle counts.
//
// The program computes which members of a family tree are ancestors of
// whom — a small saturation task that makes the set-oriented firing
// semantics visible: the sequential engine fires one rule instance per
// cycle, PARULEL fires the whole conflict set.
#include <iostream>

#include "parulel.hpp"

namespace {

constexpr const char* kProgram = R"(
; -------- templates ------------------------------------------------------
(deftemplate parent (slot of) (slot is))      ; `is` is a parent of `of`
(deftemplate ancestor (slot of) (slot is))

; -------- rules ----------------------------------------------------------
(defrule parents-are-ancestors
  (parent (of ?kid) (is ?p))
  (not (ancestor (of ?kid) (is ?p)))
  =>
  (assert (ancestor (of ?kid) (is ?p))))

(defrule ancestors-compose
  (ancestor (of ?kid) (is ?mid))
  (parent (of ?mid) (is ?top))
  (not (ancestor (of ?kid) (is ?top)))
  =>
  (assert (ancestor (of ?kid) (is ?top))))

; -------- facts: a four-generation family --------------------------------
(deffacts family
  (parent (of alice)   (is bob))
  (parent (of alice)   (is carol))
  (parent (of bob)     (is dave))
  (parent (of bob)     (is erin))
  (parent (of carol)   (is frank))
  (parent (of dave)    (is grace))
  (parent (of erin)    (is heidi))
  (parent (of frank)   (is ivan)))
)";

}  // namespace

int main() {
  const parulel::Program program = parulel::parse_program(kProgram);

  // --- OPS5-style baseline: one firing per recognize-act cycle ----------
  parulel::EngineConfig seq_cfg;
  seq_cfg.strategy = parulel::Strategy::Lex;
  parulel::SequentialEngine seq(program, seq_cfg);
  seq.assert_initial_facts();
  const parulel::RunStats seq_stats = seq.run();

  // --- PARULEL: fire the whole conflict set each cycle -------------------
  parulel::EngineConfig par_cfg;
  par_cfg.threads = parulel::ThreadPool::default_threads();
  par_cfg.matcher = parulel::MatcherKind::ParallelTreat;
  parulel::ParallelEngine par(program, par_cfg);
  par.assert_initial_facts();
  const parulel::RunStats par_stats = par.run();

  std::cout << "sequential (OPS5 select-one):  " << seq_stats.summary()
            << "\n";
  std::cout << "parallel   (PARULEL fire-all): " << par_stats.summary()
            << "\n";

  // Both engines reach the same working memory.
  const bool agree = seq.wm().content_fingerprint() ==
                     par.wm().content_fingerprint();
  std::cout << "final working memories agree: " << (agree ? "yes" : "NO")
            << "\n\n";

  // Print the derived ancestor relation (from the parallel engine).
  const auto& wm = par.wm();
  const auto anc =
      *program.schema.find(program.symbols->intern("ancestor"));
  std::cout << "derived facts:\n";
  for (parulel::FactId id : wm.extent(anc)) {
    std::cout << "  " << wm.to_string(id, *program.symbols) << "\n";
  }
  return agree ? 0 : 1;
}
