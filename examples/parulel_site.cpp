// parulel_site — one cluster site as an OS process.
//
// Normally spawned by the cluster driver (`parulel_cli --cluster N`),
// but designed to be started by hand for manual deployments:
//
//   parulel_site --program rules.pl --site-id 0 --sites 3 \
//       --driver 127.0.0.1:7400 --journal /var/lib/parulel/site-0.wal
//
// The process dials the driver, joins the cluster, and serves barriers
// until the driver sends cc-stop. Exit codes: 0 clean stop, 1 I/O
// error, 2 usage error, 3 program parse error, 4 runtime failure.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "parulel.hpp"
#include "distrib/site_runner.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --program FILE --site-id K --sites N "
               "--driver HOST:PORT\n"
               "          [--listen-port N] [--journal FILE] "
               "[--partition TEMPLATE=SLOT,...]\n"
               "          [--fault-plan SPEC] [--checkpoint-every N] "
               "[--no-fsync]\n",
               argv0);
  return 2;
}

bool parse_partition_spec(const std::string& spec,
                          std::unordered_map<std::string, std::string>& out) {
  std::stringstream ss(spec);
  std::string entry;
  while (std::getline(ss, entry, ',')) {
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
      return false;
    }
    out[entry.substr(0, eq)] = entry.substr(eq + 1);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string program_path;
  std::string driver;
  parulel::SiteOptions opt;
  bool have_site_id = false, have_sites = false;
  std::string fault_spec;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--program") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      program_path = v;
    } else if (arg == "--site-id") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.site_id = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      have_site_id = true;
    } else if (arg == "--sites") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.sites = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      have_sites = true;
    } else if (arg == "--driver") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      driver = v;
    } else if (arg == "--listen-port") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.listen_port =
          static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--journal") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.journal_path = v;
    } else if (arg == "--partition") {
      const char* v = next();
      if (!v || !parse_partition_spec(v, opt.partition)) {
        std::fprintf(stderr, "%s: bad --partition spec\n", argv[0]);
        return 2;
      }
    } else if (arg == "--fault-plan") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      fault_spec = v;
    } else if (arg == "--checkpoint-every") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.checkpoint_every = std::strtoull(v, nullptr, 10);
    } else if (arg == "--no-fsync") {
      opt.fsync = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg.c_str());
      return 2;
    }
  }

  if (program_path.empty() || !have_site_id || !have_sites ||
      driver.empty() || opt.sites == 0 || opt.site_id >= opt.sites) {
    return usage(argv[0]);
  }
  const auto colon = driver.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    std::fprintf(stderr, "%s: --driver wants HOST:PORT\n", argv[0]);
    return 2;
  }
  opt.driver_host = driver.substr(0, colon);
  opt.driver_port = static_cast<std::uint16_t>(
      std::strtoul(driver.c_str() + colon + 1, nullptr, 10));

  std::ifstream in(program_path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                 program_path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string source = buf.str();

  try {
    if (!fault_spec.empty()) {
      opt.faults = parulel::FaultPlan::parse(fault_spec);
    }
    parulel::Program program = parulel::parse_program(source);
    parulel::SiteRunner runner(program, source, std::move(opt));
    return runner.run();
  } catch (const parulel::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "site %u: %s\n", opt.site_id, e.what());
    return 4;
  }
}
