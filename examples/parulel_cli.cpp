// parulel_cli: load a PARULEL program from a file and run it.
//
// Usage:
//   parulel_cli <program.clp> [--engine seq|par] [--threads N]
//               [--strategy lex|mea|first|random] [--matcher rete|treat]
//               [--max-cycles N] [--trace] [--trace-json <file>]
//               [--metrics] [--metrics-json <file>] [--dump-wm]
//
// The hello-world of the repository:
//   ./parulel_cli ../examples/programs/greetings.clp --engine par
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "parulel.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: parulel_cli <program.clp> [options]\n"
         "  --engine seq|par       engine (default par)\n"
         "  --threads N            worker threads for par (default: cores)\n"
         "  --strategy lex|mea|first|random   seq conflict resolution\n"
         "  --matcher rete|treat   seq match algorithm (default rete)\n"
         "  --max-cycles N         cycle cap (default 1000000)\n"
         "  --trace                print per-cycle stats\n"
         "  --trace-json FILE      write one JSON object per cycle (JSONL)\n"
         "  --metrics              print engine/matcher/pool metrics\n"
         "  --metrics-json FILE    write the metrics registry as JSON\n"
         "  --dump-wm              print final working memory\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();

  std::string engine_kind = "par";
  unsigned threads = parulel::ThreadPool::default_threads();
  parulel::Strategy strategy = parulel::Strategy::Lex;
  parulel::MatcherKind seq_matcher = parulel::MatcherKind::Rete;
  std::uint64_t max_cycles = 1'000'000;
  bool trace = false, dump_wm = false, metrics = false;
  std::string trace_json_path, metrics_json_path;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--engine") {
      engine_kind = value();
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--strategy") {
      const std::string s = value();
      if (s == "lex") strategy = parulel::Strategy::Lex;
      else if (s == "mea") strategy = parulel::Strategy::Mea;
      else if (s == "first") strategy = parulel::Strategy::First;
      else if (s == "random") strategy = parulel::Strategy::Random;
      else return usage();
    } else if (arg == "--matcher") {
      const std::string m = value();
      if (m == "rete") seq_matcher = parulel::MatcherKind::Rete;
      else if (m == "treat") seq_matcher = parulel::MatcherKind::Treat;
      else return usage();
    } else if (arg == "--max-cycles") {
      max_cycles = std::stoull(value());
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--trace-json") {
      trace_json_path = value();
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--metrics-json") {
      metrics_json_path = value();
    } else if (arg == "--dump-wm") {
      dump_wm = true;
    } else {
      return usage();
    }
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  try {
    const parulel::Program program = parulel::parse_program(buffer.str());
    std::cout << "loaded: " << program.rules.size() << " rules, "
              << program.meta_rules.size() << " meta-rules, "
              << program.schema.size() << " templates, "
              << program.initial_facts.size() << " initial facts\n";

    parulel::EngineConfig cfg;
    cfg.threads = threads;
    cfg.max_cycles = max_cycles;
    cfg.trace_cycles = trace;
    cfg.strategy = strategy;
    cfg.output = &std::cout;

    std::ofstream trace_file;
    std::unique_ptr<parulel::obs::TraceSink> trace_sink;
    if (!trace_json_path.empty()) {
      trace_file.open(trace_json_path);
      if (!trace_file) {
        std::cerr << "cannot open " << trace_json_path << " for writing\n";
        return 1;
      }
      trace_sink = std::make_unique<parulel::obs::TraceSink>(trace_file);
      cfg.trace = trace_sink.get();
    }
    parulel::obs::MetricsRegistry registry;
    if (metrics || !metrics_json_path.empty()) cfg.metrics = &registry;

    std::unique_ptr<parulel::Engine> engine;
    if (engine_kind == "par") {
      cfg.matcher = parulel::MatcherKind::ParallelTreat;
      engine = std::make_unique<parulel::ParallelEngine>(program, cfg);
    } else if (engine_kind == "seq") {
      cfg.matcher = seq_matcher;
      engine = std::make_unique<parulel::SequentialEngine>(program, cfg);
    } else {
      return usage();
    }

    engine->assert_initial_facts();
    const parulel::RunStats stats = engine->run();
    std::cout << "[" << engine->name() << "] " << stats.summary() << "\n";

    if (trace) {
      std::cout << "cycle  conflict-set  redacted  fired  asserts  retracts"
                   "  wconf\n";
      for (const auto& c : stats.per_cycle) {
        std::cout << "  " << c.cycle << "\t" << c.conflict_set_size << "\t\t"
                  << c.redacted << "\t  " << c.fired << "\t " << c.asserts
                  << "\t  " << c.retracts << "\t  " << c.write_conflicts
                  << "\n";
      }
    }
    if (trace_sink) {
      std::cout << "trace: " << trace_sink->events() << " events -> "
                << trace_json_path << "\n";
    }
    if (metrics) std::cout << "metrics:\n" << registry.to_text();
    if (!metrics_json_path.empty()) {
      std::ofstream mf(metrics_json_path);
      if (!mf) {
        std::cerr << "cannot open " << metrics_json_path << " for writing\n";
        return 1;
      }
      mf << registry.to_json() << "\n";
    }
    if (dump_wm) {
      const auto& wm = engine->wm();
      std::cout << "final working memory (" << wm.alive_count()
                << " facts):\n";
      for (parulel::FactId id = 1; id <= wm.high_water(); ++id) {
        if (wm.alive(id)) {
          std::cout << "  f-" << id << " "
                    << wm.to_string(id, *program.symbols) << "\n";
        }
      }
    }
    return 0;
  } catch (const parulel::ParseError& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 1;
  } catch (const parulel::RuntimeError& e) {
    std::cerr << "runtime error: " << e.what() << "\n";
    return 1;
  }
}
