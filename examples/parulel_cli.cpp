// parulel_cli: load a PARULEL program from a file and run it.
//
// Usage:
//   parulel_cli <program.clp> [--engine seq|par|dist] [--threads N]
//               [--strategy lex|mea|first|random] [--matcher rete|treat]
//               [--max-cycles N] [--trace] [--trace-json <file>]
//               [--metrics] [--metrics-json <file>] [--dump-wm]
//               [--sites N] [--partition tmpl=slot,...]
//               [--fault-plan SPEC] [--checkpoint-every N]
//   parulel_cli --serve [--threads N] [--queue-capacity N] [--batch-max N]
//               [--max-sessions N] [--fact-quota N] [--echo]
//
// --serve speaks the rule-service line protocol (src/service/serve.hpp)
// on stdin/stdout: open sessions over program files, feed incremental
// assert/retract batches into their retained matchers, run, query.
//
// Exit codes:
//   0  success
//   1  I/O error (unreadable program, unwritable output file)
//   2  usage error (bad flag or flag value)
//   3  parse error (program text or fault-plan spec)
//   4  runtime error (engine refused the configuration; in --serve mode,
//      one or more protocol commands answered `err`)
//   5  the run hit --max-cycles without quiescing or halting
//
// The hello-world of the repository:
//   ./parulel_cli ../examples/programs/greetings.clp --engine par
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "parulel.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitIo = 1;
constexpr int kExitUsage = 2;
constexpr int kExitParse = 3;
constexpr int kExitRuntime = 4;
constexpr int kExitCycleLimit = 5;

/// A bad flag or flag value; caught in main and mapped to kExitUsage.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// An unreadable or unwritable file; mapped to kExitIo.
struct IoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void print_usage(std::ostream& os) {
  os << "usage: parulel_cli <program.clp> [options]\n"
        "  --engine seq|par|dist  engine (default par)\n"
        "  --threads N            worker threads for par (default: cores)\n"
        "  --strategy lex|mea|first|random   seq conflict resolution\n"
        "  --matcher rete|treat   seq match algorithm (default rete)\n"
        "  --max-cycles N         cycle cap (default 1000000)\n"
        "  --trace                print per-cycle stats\n"
        "  --trace-json FILE      write one JSON object per cycle (JSONL)\n"
        "  --metrics              print engine/matcher/pool metrics\n"
        "  --metrics-json FILE    write the metrics registry as JSON\n"
        "  --dump-wm              print final working memory\n"
        "  --sites N              dist: number of simulated sites "
        "(default 4)\n"
        "  --partition T=S,...    dist: partition template T on slot S;\n"
        "                         unlisted templates are replicated\n"
        "  --fault-plan SPEC      dist: inject faults, e.g.\n"
        "                         loss=0.2,dup=0.05,delay=0.1,seed=7,"
        "crash=1@5+4\n"
        "  --checkpoint-every N   dist: snapshot sites every N cycles\n"
        "\n"
        "serve mode: parulel_cli --serve [options]\n"
        "  --threads N            shared match/fire pool threads\n"
        "  --queue-capacity N     per-session request cap (default 256)\n"
        "  --batch-max N          max requests per commit (default 128)\n"
        "  --max-sessions N       open session cap (default 64)\n"
        "  --fact-quota N         per-session alive-fact cap (default off)\n"
        "  --echo                 echo each protocol line before replies\n";
}

std::uint64_t parse_count(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::uint64_t n = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return n;
  } catch (const std::exception&) {
    throw UsageError("value for " + flag + " must be a non-negative integer, "
                     "got '" + value + "'");
  }
}

/// Parse `tmpl=slot,...` into the PartitionScheme input map.
std::unordered_map<std::string, std::string> parse_partition(
    const std::string& spec) {
  std::unordered_map<std::string, std::string> slot_by_template;
  std::istringstream stream(spec);
  std::string pair;
  while (std::getline(stream, pair, ',')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == pair.size()) {
      throw UsageError("--partition entries must be TEMPLATE=SLOT, got '" +
                       pair + "'");
    }
    slot_by_template[pair.substr(0, eq)] = pair.substr(eq + 1);
  }
  return slot_by_template;
}

struct CliOptions {
  std::string program_path;
  std::string engine_kind = "par";
  unsigned threads = parulel::ThreadPool::default_threads();
  parulel::Strategy strategy = parulel::Strategy::Lex;
  parulel::MatcherKind seq_matcher = parulel::MatcherKind::Rete;
  std::uint64_t max_cycles = 1'000'000;
  bool trace = false, dump_wm = false, metrics = false;
  std::string trace_json_path, metrics_json_path;

  unsigned sites = 4;
  std::unordered_map<std::string, std::string> partition;
  std::string fault_plan_spec;
  std::uint64_t checkpoint_every = 0;
};

CliOptions parse_args(int argc, char** argv) {
  if (argc < 2) throw UsageError("missing program file");
  CliOptions opt;
  opt.program_path = argv[1];

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw UsageError("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--engine") {
      opt.engine_kind = value();
      if (opt.engine_kind != "seq" && opt.engine_kind != "par" &&
          opt.engine_kind != "dist") {
        throw UsageError("unknown engine '" + opt.engine_kind + "'");
      }
    } else if (arg == "--threads") {
      opt.threads = static_cast<unsigned>(parse_count(arg, value()));
    } else if (arg == "--strategy") {
      const std::string s = value();
      if (s == "lex") opt.strategy = parulel::Strategy::Lex;
      else if (s == "mea") opt.strategy = parulel::Strategy::Mea;
      else if (s == "first") opt.strategy = parulel::Strategy::First;
      else if (s == "random") opt.strategy = parulel::Strategy::Random;
      else throw UsageError("unknown strategy '" + s + "'");
    } else if (arg == "--matcher") {
      const std::string m = value();
      if (m == "rete") opt.seq_matcher = parulel::MatcherKind::Rete;
      else if (m == "treat") opt.seq_matcher = parulel::MatcherKind::Treat;
      else throw UsageError("unknown matcher '" + m + "'");
    } else if (arg == "--max-cycles") {
      opt.max_cycles = parse_count(arg, value());
    } else if (arg == "--trace") {
      opt.trace = true;
    } else if (arg == "--trace-json") {
      opt.trace_json_path = value();
    } else if (arg == "--metrics") {
      opt.metrics = true;
    } else if (arg == "--metrics-json") {
      opt.metrics_json_path = value();
    } else if (arg == "--dump-wm") {
      opt.dump_wm = true;
    } else if (arg == "--sites") {
      opt.sites = static_cast<unsigned>(parse_count(arg, value()));
      if (opt.sites == 0) throw UsageError("--sites must be >= 1");
    } else if (arg == "--partition") {
      opt.partition = parse_partition(value());
    } else if (arg == "--fault-plan") {
      opt.fault_plan_spec = value();
    } else if (arg == "--checkpoint-every") {
      opt.checkpoint_every = parse_count(arg, value());
    } else {
      throw UsageError("unknown option '" + arg + "'");
    }
  }
  return opt;
}

void dump_working_memory(const parulel::WorkingMemory& wm,
                         const parulel::Program& program) {
  for (parulel::FactId id = 1; id <= wm.high_water(); ++id) {
    if (wm.alive(id)) {
      std::cout << "  f-" << id << " " << wm.to_string(id, *program.symbols)
                << "\n";
    }
  }
}

/// `parulel_cli --serve`: the rule-service line protocol on stdin/stdout.
int run_serve(int argc, char** argv) {
  parulel::service::ServeOptions opt;
  opt.service.pool_threads = parulel::ThreadPool::default_threads();
  opt.service.output = &std::cout;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw UsageError("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--threads") {
      opt.service.pool_threads =
          static_cast<unsigned>(parse_count(arg, value()));
      if (opt.service.pool_threads == 0) {
        throw UsageError("--threads must be >= 1");
      }
    } else if (arg == "--queue-capacity") {
      opt.service.queue_capacity = parse_count(arg, value());
      if (opt.service.queue_capacity == 0) {
        throw UsageError("--queue-capacity must be >= 1");
      }
    } else if (arg == "--batch-max") {
      opt.service.batch_max = parse_count(arg, value());
      if (opt.service.batch_max == 0) {
        throw UsageError("--batch-max must be >= 1");
      }
    } else if (arg == "--max-sessions") {
      opt.service.max_sessions = parse_count(arg, value());
    } else if (arg == "--fact-quota") {
      opt.service.fact_quota = parse_count(arg, value());
    } else if (arg == "--echo") {
      opt.echo = true;
    } else {
      throw UsageError("unknown --serve option '" + arg + "'");
    }
  }

  const int errors = parulel::service::serve(std::cin, std::cout, opt);
  return errors == 0 ? kExitOk : kExitRuntime;
}

int run_cli(int argc, char** argv) {
  const CliOptions opt = parse_args(argc, argv);

  std::ifstream in(opt.program_path);
  if (!in) throw IoError("cannot open " + opt.program_path);
  std::stringstream buffer;
  buffer << in.rdbuf();

  const parulel::Program program = parulel::parse_program(buffer.str());
  std::cout << "loaded: " << program.rules.size() << " rules, "
            << program.meta_rules.size() << " meta-rules, "
            << program.schema.size() << " templates, "
            << program.initial_facts.size() << " initial facts\n";

  std::ofstream trace_file;
  std::unique_ptr<parulel::obs::TraceSink> trace_sink;
  if (!opt.trace_json_path.empty()) {
    trace_file.open(opt.trace_json_path);
    if (!trace_file) {
      throw IoError("cannot open " + opt.trace_json_path + " for writing");
    }
    trace_sink = std::make_unique<parulel::obs::TraceSink>(trace_file);
  }
  parulel::obs::MetricsRegistry registry;
  const bool want_metrics = opt.metrics || !opt.metrics_json_path.empty();

  parulel::TerminationReason termination = parulel::TerminationReason::Unknown;

  if (opt.engine_kind == "dist") {
    parulel::DistConfig cfg;
    cfg.sites = opt.sites;
    cfg.max_cycles = opt.max_cycles;
    cfg.trace_cycles = opt.trace;
    cfg.output = &std::cout;
    cfg.checkpoint_every = opt.checkpoint_every;
    if (!opt.fault_plan_spec.empty()) {
      cfg.faults = parulel::FaultPlan::parse(opt.fault_plan_spec);
    }
    cfg.trace = trace_sink.get();
    if (want_metrics) cfg.metrics = &registry;

    parulel::PartitionScheme scheme(program, opt.partition);
    parulel::DistributedEngine engine(program, std::move(scheme), cfg);
    engine.assert_initial_facts();
    const parulel::DistStats stats = engine.run();
    termination = stats.run.termination;

    std::cout << "[distributed] " << stats.run.summary() << "\n";
    std::cout << "dist: " << opt.sites << " sites, " << stats.messages
              << " messages, " << stats.broadcasts << " broadcasts\n";
    if (cfg.faults.enabled() || cfg.checkpoint_every > 0) {
      const auto& f = stats.faults;
      std::cout << "faults: sent " << f.sent << ", delivered " << f.delivered
                << ", dropped " << f.dropped << ", retries " << f.retries
                << ", dup-suppressed " << f.dup_suppressed << ", crashes "
                << f.crashes << ", restores " << f.restores
                << ", checkpoints " << f.checkpoints << "\n";
    }
    std::cout << "global fingerprint: " << std::hex
              << engine.global_fingerprint() << std::dec << "\n";
    if (opt.dump_wm) {
      for (unsigned s = 0; s < engine.site_count(); ++s) {
        const auto& wm = engine.site_wm(s);
        std::cout << "site " << s << " working memory (" << wm.alive_count()
                  << " facts):\n";
        dump_working_memory(wm, program);
      }
    }
  } else {
    parulel::EngineConfig cfg;
    cfg.threads = opt.threads;
    cfg.max_cycles = opt.max_cycles;
    cfg.trace_cycles = opt.trace;
    cfg.strategy = opt.strategy;
    cfg.output = &std::cout;
    cfg.trace = trace_sink.get();
    if (want_metrics) cfg.metrics = &registry;

    std::unique_ptr<parulel::Engine> engine;
    if (opt.engine_kind == "par") {
      cfg.matcher = parulel::MatcherKind::ParallelTreat;
      engine = std::make_unique<parulel::ParallelEngine>(program, cfg);
    } else {
      cfg.matcher = opt.seq_matcher;
      engine = std::make_unique<parulel::SequentialEngine>(program, cfg);
    }

    engine->assert_initial_facts();
    const parulel::RunStats stats = engine->run();
    termination = stats.termination;
    std::cout << "[" << engine->name() << "] " << stats.summary() << "\n";

    if (opt.trace) {
      std::cout << "cycle  conflict-set  redacted  fired  asserts  retracts"
                   "  wconf\n";
      for (const auto& c : stats.per_cycle) {
        std::cout << "  " << c.cycle << "\t" << c.conflict_set_size << "\t\t"
                  << c.redacted << "\t  " << c.fired << "\t " << c.asserts
                  << "\t  " << c.retracts << "\t  " << c.write_conflicts
                  << "\n";
      }
    }
    if (opt.dump_wm) {
      const auto& wm = engine->wm();
      std::cout << "final working memory (" << wm.alive_count()
                << " facts):\n";
      dump_working_memory(wm, program);
    }
  }

  if (trace_sink) {
    std::cout << "trace: " << trace_sink->events() << " events -> "
              << opt.trace_json_path << "\n";
  }
  if (opt.metrics) std::cout << "metrics:\n" << registry.to_text();
  if (!opt.metrics_json_path.empty()) {
    std::ofstream mf(opt.metrics_json_path);
    if (!mf) {
      throw IoError("cannot open " + opt.metrics_json_path + " for writing");
    }
    mf << registry.to_json() << "\n";
  }

  if (termination == parulel::TerminationReason::CycleLimit) {
    std::cerr << "run truncated: hit --max-cycles before quiescence\n";
    return kExitCycleLimit;
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::strcmp(argv[1], "--serve") == 0) {
      return run_serve(argc, argv);
    }
    return run_cli(argc, argv);
  } catch (const UsageError& e) {
    std::cerr << "usage error: " << e.what() << "\n\n";
    print_usage(std::cerr);
    return kExitUsage;
  } catch (const IoError& e) {
    std::cerr << "io error: " << e.what() << "\n";
    return kExitIo;
  } catch (const parulel::ParseError& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return kExitParse;
  } catch (const parulel::RuntimeError& e) {
    std::cerr << "runtime error: " << e.what() << "\n";
    return kExitRuntime;
  }
}
