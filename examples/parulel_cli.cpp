// parulel_cli: load a PARULEL program from a file and run it — or serve
// the rule-service line protocol, locally or over TCP.
//
// Modes:
//   parulel_cli <program.clp> [options]    run a program file
//   parulel_cli --serve [options]          line protocol on stdin/stdout
//   parulel_cli --listen [options]         line protocol over TCP
//   parulel_cli --connect HOST:PORT[,...]  drive a TCP server from stdin
//                                          (extra endpoints: failover list)
//
// Every flag lives in one table (kFlags below): the parser, `--help`,
// and the README's flag table (`--help-markdown`) are all generated from
// it, so a flag cannot exist without being documented.
//
// Exit codes:
//   0  success
//   1  I/O error (unreadable program, unwritable output file, bind or
//      connect failure, connection lost)
//   2  usage error (bad flag, bad flag value, flag in the wrong mode)
//   3  parse error (program text or fault-plan spec)
//   4  runtime error (engine refused the configuration; in serve or
//      connect mode, one or more protocol commands answered `err`)
//   5  the run hit --max-cycles without quiescing or halting
//
// The hello-world of the repository:
//   ./parulel_cli ../examples/programs/greetings.clp --engine par
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "parulel.hpp"
#include "distrib/cluster_driver.hpp"

#include <unistd.h>

namespace {

constexpr int kExitOk = 0;
constexpr int kExitIo = 1;
constexpr int kExitUsage = 2;
constexpr int kExitParse = 3;
constexpr int kExitRuntime = 4;
constexpr int kExitCycleLimit = 5;

/// A bad flag or flag value; caught in main and mapped to kExitUsage.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// An unreadable or unwritable file; mapped to kExitIo.
struct IoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

std::uint64_t parse_count(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::uint64_t n = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return n;
  } catch (const std::exception&) {
    throw UsageError("value for " + flag + " must be a non-negative integer, "
                     "got '" + value + "'");
  }
}

/// Parse `tmpl=slot,...` into the PartitionScheme input map.
std::unordered_map<std::string, std::string> parse_partition(
    const std::string& spec) {
  std::unordered_map<std::string, std::string> slot_by_template;
  std::istringstream stream(spec);
  std::string pair;
  while (std::getline(stream, pair, ',')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == pair.size()) {
      throw UsageError("--partition entries must be TEMPLATE=SLOT, got '" +
                       pair + "'");
    }
    slot_by_template[pair.substr(0, eq)] = pair.substr(eq + 1);
  }
  return slot_by_template;
}

enum class Mode { Run, Serve, Listen, Connect };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::Run: return "run";
    case Mode::Serve: return "serve";
    case Mode::Listen: return "listen";
    case Mode::Connect: return "connect";
  }
  return "?";
}

/// Everything the CLI can be told, across all four modes.
struct Options {
  Mode mode = Mode::Run;
  std::string program_path;    // run
  std::string connect_target;  // connect, "HOST:PORT"

  // run
  std::string engine_kind = "par";
  unsigned threads = parulel::ThreadPool::default_threads();
  parulel::Strategy strategy = parulel::Strategy::Lex;
  parulel::MatcherKind seq_matcher = parulel::MatcherKind::Rete;
  bool matcher_explicit = false;
  std::uint64_t max_cycles = 1'000'000;
  bool trace = false, dump_wm = false, metrics = false, compile_dump = false;
  std::string trace_json_path, metrics_json_path;
  unsigned sites = 4;
  std::unordered_map<std::string, std::string> partition;
  std::string partition_spec_raw;  // forwarded verbatim to cluster sites
  std::string fault_plan_spec;
  std::uint64_t checkpoint_every = 0;

  // run, multi-process cluster
  unsigned cluster_sites = 0;  // 0 = off; N = drive N site processes
  std::string cluster_bin;
  std::uint16_t cluster_port = 0;
  bool cluster_spawn = true;

  // serve + listen (the fronted service)
  parulel::service::ServiceConfig service;
  bool echo = false;

  // listen
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string port_file;
  std::size_t max_conns = 64;
  std::uint64_t idle_timeout_ms = 0;
  std::uint64_t drain_timeout_ms = 2'000;
  unsigned shards = 1;
  std::string net_fault_spec;
  std::string replica_of;
  std::uint64_t repl_timeout_ms = 1'000;
  std::uint64_t promote_grace_ms = 2'000;

  // connect
  std::uint64_t connect_timeout_ms = 0;
  std::uint64_t io_timeout_ms = 0;
  unsigned retry_attempts = 0;  // 0 = plain client, no retry
  std::uint64_t retry_seed = 1;
};

// Mode-applicability bits for a flag.
constexpr unsigned kRun = 1u << 0;
constexpr unsigned kServe = 1u << 1;
constexpr unsigned kListen = 1u << 2;
constexpr unsigned kConnect = 1u << 3;

/// One CLI flag: its name, value shape, the modes it applies to, the
/// help line, and the parse action. The single source for parsing,
/// --help, and the README table (--help-markdown).
struct FlagSpec {
  const char* name;
  const char* metavar;  ///< nullptr: boolean flag, takes no value
  unsigned modes;
  const char* help;
  void (*apply)(Options&, const std::string& value);
};

const FlagSpec kFlags[] = {
    {"--engine", "seq|par|dist", kRun, "engine (default par)",
     [](Options& o, const std::string& v) {
       if (v != "seq" && v != "par" && v != "dist") {
         throw UsageError("unknown engine '" + v + "'");
       }
       o.engine_kind = v;
     }},
    {"--threads", "N", kRun | kServe | kListen,
     "worker threads: par engine / service pool (default: cores)",
     [](Options& o, const std::string& v) {
       o.threads = static_cast<unsigned>(parse_count("--threads", v));
       o.service.pool_threads = o.threads;
     }},
    {"--strategy", "lex|mea|first|random", kRun,
     "seq conflict resolution (default lex)",
     [](Options& o, const std::string& v) {
       if (v == "lex") o.strategy = parulel::Strategy::Lex;
       else if (v == "mea") o.strategy = parulel::Strategy::Mea;
       else if (v == "first") o.strategy = parulel::Strategy::First;
       else if (v == "random") o.strategy = parulel::Strategy::Random;
       else throw UsageError("unknown strategy '" + v + "'");
     }},
    {"--matcher", "rete|treat|compiled", kRun,
     "match algorithm (default: rete for seq, parallel-treat for par)",
     [](Options& o, const std::string& v) {
       const auto kind = parulel::parse_matcher_kind(v);
       if (!kind) throw UsageError("unknown matcher '" + v + "'");
       o.seq_matcher = *kind;
       o.matcher_explicit = true;
     }},
    {"--compile-dump", nullptr, kRun,
     "print the compiled bytecode listing and exit without running",
     [](Options& o, const std::string&) { o.compile_dump = true; }},
    {"--max-cycles", "N", kRun, "cycle cap (default 1000000)",
     [](Options& o, const std::string& v) {
       o.max_cycles = parse_count("--max-cycles", v);
     }},
    {"--trace", nullptr, kRun, "print per-cycle stats",
     [](Options& o, const std::string&) { o.trace = true; }},
    {"--trace-json", "FILE", kRun,
     "write one JSON object per cycle (JSONL)",
     [](Options& o, const std::string& v) { o.trace_json_path = v; }},
    {"--metrics", nullptr, kRun, "print engine/matcher/pool metrics",
     [](Options& o, const std::string&) { o.metrics = true; }},
    {"--metrics-json", "FILE", kRun,
     "write the metrics registry as JSON",
     [](Options& o, const std::string& v) { o.metrics_json_path = v; }},
    {"--dump-wm", nullptr, kRun, "print final working memory",
     [](Options& o, const std::string&) { o.dump_wm = true; }},
    {"--sites", "N", kRun, "dist: number of simulated sites (default 4)",
     [](Options& o, const std::string& v) {
       o.sites = static_cast<unsigned>(parse_count("--sites", v));
       if (o.sites == 0) throw UsageError("--sites must be >= 1");
     }},
    {"--partition", "T=S,...", kRun,
     "dist: partition template T on slot S; unlisted templates are "
     "replicated",
     [](Options& o, const std::string& v) {
       o.partition = parse_partition(v);
       o.partition_spec_raw = v;
     }},
    {"--fault-plan", "SPEC", kRun,
     "dist: inject faults, e.g. loss=0.2,dup=0.05,delay=0.1,seed=7,"
     "crash=1@5+4",
     [](Options& o, const std::string& v) { o.fault_plan_spec = v; }},
    {"--checkpoint-every", "N", kRun,
     "dist: snapshot sites every N cycles; cluster: WAL batches per "
     "snapshot rewrite",
     [](Options& o, const std::string& v) {
       o.checkpoint_every = parse_count("--checkpoint-every", v);
     }},
    {"--cluster", "N", kRun,
     "run as N real site PROCESSES over TCP instead of the in-process "
     "dist engine; chaos plans deliver genuine kill -9s",
     [](Options& o, const std::string& v) {
       o.cluster_sites = static_cast<unsigned>(parse_count("--cluster", v));
       if (o.cluster_sites == 0) throw UsageError("--cluster must be >= 1");
     }},
    {"--cluster-bin", "PATH", kRun,
     "cluster: parulel_site binary (default: $PARULEL_SITE_BIN, then "
     "parulel_site next to this executable)",
     [](Options& o, const std::string& v) { o.cluster_bin = v; }},
    {"--cluster-port", "N", kRun,
     "cluster: driver control port; 0 = kernel-assigned (default 0)",
     [](Options& o, const std::string& v) {
       const std::uint64_t p = parse_count("--cluster-port", v);
       if (p > 65535) throw UsageError("--cluster-port must be <= 65535");
       o.cluster_port = static_cast<std::uint16_t>(p);
     }},
    {"--cluster-spawn", "on|off", kRun,
     "cluster: spawn site processes (on, default) or wait for manually "
     "started sites to dial in (off)",
     [](Options& o, const std::string& v) {
       if (v == "on") o.cluster_spawn = true;
       else if (v == "off") o.cluster_spawn = false;
       else throw UsageError("--cluster-spawn wants on or off, got '" + v +
                             "'");
     }},
    {"--queue-capacity", "N", kServe | kListen,
     "per-session request cap (default 256)",
     [](Options& o, const std::string& v) {
       o.service.queue_capacity = parse_count("--queue-capacity", v);
       if (o.service.queue_capacity == 0) {
         throw UsageError("--queue-capacity must be >= 1");
       }
     }},
    {"--batch-max", "N", kServe | kListen,
     "max requests per commit (default 128)",
     [](Options& o, const std::string& v) {
       o.service.batch_max = parse_count("--batch-max", v);
       if (o.service.batch_max == 0) {
         throw UsageError("--batch-max must be >= 1");
       }
     }},
    {"--max-sessions", "N", kServe | kListen,
     "open session cap (default 64)",
     [](Options& o, const std::string& v) {
       o.service.max_sessions = parse_count("--max-sessions", v);
     }},
    {"--fact-quota", "N", kServe | kListen,
     "per-session alive-fact cap (default off)",
     [](Options& o, const std::string& v) {
       o.service.fact_quota = parse_count("--fact-quota", v);
     }},
    {"--echo", nullptr, kServe | kListen | kConnect,
     "echo each protocol line before its response",
     [](Options& o, const std::string&) { o.echo = true; }},
    {"--host", "ADDR", kListen,
     "bind address (default 127.0.0.1)",
     [](Options& o, const std::string& v) { o.host = v; }},
    {"--port", "N", kListen,
     "TCP port; 0 = kernel-assigned (default 0)",
     [](Options& o, const std::string& v) {
       const std::uint64_t p = parse_count("--port", v);
       if (p > 65535) throw UsageError("--port must be <= 65535");
       o.port = static_cast<std::uint16_t>(p);
     }},
    {"--port-file", "FILE", kListen,
     "write the bound port to FILE once listening",
     [](Options& o, const std::string& v) { o.port_file = v; }},
    {"--max-conns", "N", kListen,
     "connection cap; beyond it arrivals get `err server-full` "
     "(default 64)",
     [](Options& o, const std::string& v) {
       o.max_conns = parse_count("--max-conns", v);
       if (o.max_conns == 0) throw UsageError("--max-conns must be >= 1");
     }},
    {"--idle-timeout-ms", "N", kListen,
     "close connections idle this long; 0 = never (default 0)",
     [](Options& o, const std::string& v) {
       o.idle_timeout_ms = parse_count("--idle-timeout-ms", v);
     }},
    {"--drain-timeout-ms", "N", kListen,
     "graceful-shutdown flush budget (default 2000)",
     [](Options& o, const std::string& v) {
       o.drain_timeout_ms = parse_count("--drain-timeout-ms", v);
     }},
    {"--shards", "N", kListen,
     "event-loop shards; sessions pin to shards by name hash "
     "(default 1)",
     [](Options& o, const std::string& v) {
       o.shards = static_cast<unsigned>(parse_count("--shards", v));
       if (o.shards == 0) throw UsageError("--shards must be >= 1");
     }},
    {"--journal-dir", "DIR", kRun | kServe | kListen,
     "write-ahead journal directory; enables durable sessions "
     "(open/resume survive crashes); cluster: per-site WALs, required "
     "for crash plans",
     [](Options& o, const std::string& v) { o.service.journal.dir = v; }},
    {"--snapshot-every", "N", kServe | kListen,
     "truncate each journal to one snapshot after N batches; 0 = never "
     "(default 32)",
     [](Options& o, const std::string& v) {
       o.service.journal.snapshot_every = parse_count("--snapshot-every", v);
     }},
    {"--journal-fsync", "on|off", kRun | kServe | kListen,
     "fsync each journal record before acking (default on; off trades "
     "the power-loss guarantee for throughput)",
     [](Options& o, const std::string& v) {
       if (v == "on") o.service.journal.fsync = true;
       else if (v == "off") o.service.journal.fsync = false;
       else throw UsageError("--journal-fsync wants on or off, got '" + v +
                             "'");
     }},
    {"--net-fault-plan", "SPEC", kListen,
     "inject connection faults, e.g. seed=7,drop=0.01,ackloss=0.01,"
     "delay=0.05,maxdelay=50",
     [](Options& o, const std::string& v) { o.net_fault_spec = v; }},
    {"--replica-of", "HOST:PORT", kListen,
     "run as a hot standby of this primary: apply its shipped journal "
     "records; requires --journal-dir",
     [](Options& o, const std::string& v) { o.replica_of = v; }},
    {"--repl-timeout-ms", "N", kListen,
     "semi-sync replication: wait N ms for the replica's ack before "
     "degrading to async; 0 = pure async (default 1000)",
     [](Options& o, const std::string& v) {
       o.repl_timeout_ms = parse_count("--repl-timeout-ms", v);
     }},
    {"--promote-grace-ms", "N", kListen,
     "standby promotion fence: serve a failed-over resume only after "
     "the replication link has been down N ms (default 2000)",
     [](Options& o, const std::string& v) {
       o.promote_grace_ms = parse_count("--promote-grace-ms", v);
     }},
    {"--connect-timeout-ms", "N", kConnect,
     "give up dialing after N ms; 0 = OS default (default 0)",
     [](Options& o, const std::string& v) {
       o.connect_timeout_ms = parse_count("--connect-timeout-ms", v);
     }},
    {"--io-timeout-ms", "N", kConnect,
     "per-request send/recv timeout; 0 = block forever (default 0)",
     [](Options& o, const std::string& v) {
       o.io_timeout_ms = parse_count("--io-timeout-ms", v);
     }},
    {"--retry", "N", kConnect,
     "exactly-once retry: up to N transport attempts per command, with "
     "reconnect + resume + replay (default off)",
     [](Options& o, const std::string& v) {
       o.retry_attempts = static_cast<unsigned>(parse_count("--retry", v));
       if (o.retry_attempts == 0) throw UsageError("--retry must be >= 1");
     }},
    {"--retry-seed", "N", kConnect,
     "backoff jitter seed for --retry (default 1)",
     [](Options& o, const std::string& v) {
       o.retry_seed = parse_count("--retry-seed", v);
     }},
    {"--retry-max-attempts", "N", kConnect,
     "cap on transport attempts per command (default 8); a dead cluster "
     "answers `err unavailable` after the cap instead of retrying "
     "forever (implies --retry)",
     [](Options& o, const std::string& v) {
       o.retry_attempts =
           static_cast<unsigned>(parse_count("--retry-max-attempts", v));
       if (o.retry_attempts == 0) {
         throw UsageError("--retry-max-attempts must be >= 1");
       }
     }},
};

void print_usage(std::ostream& os) {
  os << "usage:\n"
        "  parulel_cli <program.clp> [options]   run a program file\n"
        "  parulel_cli --serve [options]         line protocol on "
        "stdin/stdout\n"
        "  parulel_cli --listen [options]        line protocol over TCP\n"
        "  parulel_cli --connect HOST:PORT[,HOST:PORT...]\n"
        "                                        drive a TCP server from "
        "stdin; extra\n"
        "                                        endpoints are the failover "
        "list\n"
        "\noptions (marked with the modes that accept them):\n";
  for (const FlagSpec& f : kFlags) {
    std::string left = f.name;
    if (f.metavar) {
      left += ' ';
      left += f.metavar;
    }
    std::string modes;
    for (Mode m : {Mode::Run, Mode::Serve, Mode::Listen, Mode::Connect}) {
      if (f.modes & (1u << static_cast<unsigned>(m))) {
        if (!modes.empty()) modes += ',';
        modes += mode_name(m);
      }
    }
    os << "  " << left;
    for (std::size_t i = left.size(); i < 34; ++i) os << ' ';
    os << "[" << modes << "] " << f.help << "\n";
  }
}

/// The README's flag table, generated from the same kFlags source.
void print_usage_markdown(std::ostream& os) {
  auto escape = [](std::string s) {
    std::string out;
    for (char c : s) {
      if (c == '|') out += "\\|";
      else out += c;
    }
    return out;
  };
  os << "| Flag | Modes | Description |\n|---|---|---|\n";
  for (const FlagSpec& f : kFlags) {
    std::string left = f.name;
    if (f.metavar) {
      left += ' ';
      left += f.metavar;
    }
    std::string modes;
    for (Mode m : {Mode::Run, Mode::Serve, Mode::Listen, Mode::Connect}) {
      if (f.modes & (1u << static_cast<unsigned>(m))) {
        if (!modes.empty()) modes += ", ";
        modes += mode_name(m);
      }
    }
    os << "| `" << escape(left) << "` | " << modes << " | "
       << escape(f.help) << " |\n";
  }
}

/// Parse everything after the mode selector through the flag table.
Options parse_args(int argc, char** argv) {
  Options opt;
  opt.service.pool_threads = parulel::ThreadPool::default_threads();

  int i = 1;
  if (argc < 2) throw UsageError("missing program file or mode flag");
  const std::string first = argv[1];
  if (first == "--serve") {
    opt.mode = Mode::Serve;
    i = 2;
  } else if (first == "--listen") {
    opt.mode = Mode::Listen;
    i = 2;
  } else if (first == "--connect") {
    opt.mode = Mode::Connect;
    if (argc < 3) throw UsageError("--connect needs HOST:PORT");
    opt.connect_target = argv[2];
    i = 3;
  } else if (first.rfind("--", 0) == 0) {
    throw UsageError("unknown mode or misplaced option '" + first +
                     "' (the program file must come first)");
  } else {
    opt.program_path = first;
    i = 2;
  }
  const unsigned mode_bit = 1u << static_cast<unsigned>(opt.mode);

  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const FlagSpec* spec = nullptr;
    for (const FlagSpec& f : kFlags) {
      if (arg == f.name) {
        spec = &f;
        break;
      }
    }
    if (!spec) throw UsageError("unknown option '" + arg + "'");
    if (!(spec->modes & mode_bit)) {
      throw UsageError(arg + std::string(" is not valid in ") +
                       mode_name(opt.mode) + " mode");
    }
    std::string value;
    if (spec->metavar) {
      if (i + 1 >= argc) throw UsageError("missing value for " + arg);
      value = argv[++i];
    }
    spec->apply(opt, value);
  }

  if ((opt.mode == Mode::Serve || opt.mode == Mode::Listen) &&
      opt.service.pool_threads == 0) {
    throw UsageError("--threads must be >= 1");
  }
  return opt;
}

void dump_working_memory(const parulel::WorkingMemory& wm,
                         const parulel::Program& program) {
  for (parulel::FactId id = 1; id <= wm.high_water(); ++id) {
    if (wm.alive(id)) {
      std::cout << "  f-" << id << " " << wm.to_string(id, *program.symbols)
                << "\n";
    }
  }
}

/// `--serve`: the rule-service line protocol on stdin/stdout.
int run_serve(const Options& opt) {
  parulel::service::ServeOptions serve_opt;
  serve_opt.service = opt.service;
  serve_opt.service.output = &std::cout;
  serve_opt.echo = opt.echo;
  const int errors = parulel::service::serve(std::cin, std::cout, serve_opt);
  return errors == 0 ? kExitOk : kExitRuntime;
}

parulel::net::NetServer* g_server = nullptr;

extern "C" void handle_stop_signal(int) {
  // NetServer::stop() is async-signal-safe: one write on a self-pipe.
  if (g_server != nullptr) g_server->stop();
}

/// `--listen`: the same protocol over TCP, until SIGINT/SIGTERM.
int run_listen(const Options& opt) {
  parulel::net::NetServerConfig cfg;
  cfg.host = opt.host;
  cfg.port = opt.port;
  cfg.max_connections = opt.max_conns;
  cfg.idle_timeout_ms = opt.idle_timeout_ms;
  cfg.drain_timeout_ms = opt.drain_timeout_ms;
  cfg.shards = opt.shards;
  cfg.service = opt.service;
  cfg.echo = opt.echo;
  cfg.replica_of = opt.replica_of;
  cfg.repl_timeout_ms = opt.repl_timeout_ms;
  cfg.promote_grace_ms = opt.promote_grace_ms;
  if (!opt.net_fault_spec.empty()) {
    cfg.faults = parulel::net::NetFaultPlan::parse(opt.net_fault_spec);
  }

  parulel::net::NetServer server(cfg);
  if (!server.start()) throw IoError(server.error());
  for (const auto& report : server.recovery_reports()) {
    if (report.ok) {
      std::cout << "recovered " << report.name << " batches=" << report.batches
                << " ops=" << report.ops << " facts=" << report.facts;
      if (report.torn_bytes > 0) {
        // Name what the crash tore and where, not just how much.
        std::cout << " torn=" << report.torn_kind << "@" << report.torn_offset
                  << "+" << report.torn_bytes;
      }
      std::cout << "\n";
    } else {
      std::cout << "quarantined " << report.name << ": " << report.error
                << "\n";
    }
  }
  if (!opt.port_file.empty()) {
    std::ofstream pf(opt.port_file);
    if (!pf) throw IoError("cannot open " + opt.port_file + " for writing");
    pf << server.port() << "\n";
  }
  std::cout << "listening on " << opt.host << ":" << server.port() << "\n"
            << std::flush;

  g_server = &server;
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  server.run();
  g_server = nullptr;

  const parulel::NetStats stats = server.stats_snapshot();
  std::cout << "net:";
  for (const auto& f : parulel::obs::net_fields()) {
    std::cout << ' ' << f.name << '=' << stats.*f.member;
  }
  std::cout << "\n";
  if (opt.service.journal.enabled()) {
    // Sum the per-shard journal counters into one row (one shard owns
    // each session, so the rows partition cleanly).
    parulel::JournalStats jstats;
    for (unsigned i = 0; i < server.shards(); ++i) {
      const parulel::JournalStats row =
          server.shard_service(i).journal_stats_snapshot();
      for (const auto& f : parulel::obs::journal_fields()) {
        jstats.*f.member += row.*f.member;
      }
    }
    std::cout << "journal:";
    for (const auto& f : parulel::obs::journal_fields()) {
      std::cout << ' ' << f.name << '=' << jstats.*f.member;
    }
    std::cout << "\n";
    const parulel::ReplStats repl = server.repl_stats_snapshot();
    std::cout << "repl:";
    for (const auto& f : parulel::obs::repl_fields()) {
      std::cout << ' ' << f.name << '=' << repl.*f.member;
    }
    std::cout << "\n";
  }
  return kExitOk;
}

void print_response(const parulel::net::Response& response) {
  std::cout << response.status << "\n";
  for (const std::string& detail : response.details) {
    std::cout << detail << "\n";
  }
}

/// Split "HOST:PORT[,HOST:PORT...]" into (host, port) pairs.
std::vector<std::pair<std::string, std::uint16_t>> parse_endpoints(
    const std::string& target) {
  std::vector<std::pair<std::string, std::uint16_t>> endpoints;
  std::istringstream stream(target);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const std::size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == item.size()) {
      throw UsageError("--connect endpoints must be HOST:PORT, got '" + item +
                       "'");
    }
    const std::uint64_t port = parse_count("--connect", item.substr(colon + 1));
    if (port == 0 || port > 65535) {
      throw UsageError("--connect port must be 1..65535");
    }
    endpoints.emplace_back(item.substr(0, colon),
                           static_cast<std::uint16_t>(port));
  }
  if (endpoints.empty()) throw UsageError("--connect needs HOST:PORT");
  return endpoints;
}

/// `--connect HOST:PORT[,HOST:PORT...]`: read command lines from stdin,
/// print each response; same exit-code contract as --serve. With
/// `--retry N` the exactly-once RetryClient drives each line instead of
/// a plain request/response, surviving server restarts mid-script;
/// extra comma-separated endpoints are its ordered failover list. When
/// every endpoint stays dead through the attempt cap, the script gets
/// one terminal `err unavailable` and the process exits with the I/O
/// code.
int run_connect(const Options& opt) {
  const auto endpoints = parse_endpoints(opt.connect_target);
  if (endpoints.size() > 1 && opt.retry_attempts == 0) {
    throw UsageError("multiple --connect endpoints need --retry or "
                     "--retry-max-attempts (failover is the retry "
                     "client's job)");
  }
  const std::string& host = endpoints.front().first;
  const std::uint16_t port = endpoints.front().second;

  int errors = 0;
  std::string line;

  if (opt.retry_attempts > 0) {
    parulel::net::RetryConfig rcfg;
    rcfg.host = host;
    rcfg.port = port;
    rcfg.endpoints.assign(endpoints.begin() + 1, endpoints.end());
    rcfg.max_attempts = opt.retry_attempts;
    if (opt.connect_timeout_ms > 0) {
      rcfg.connect_timeout_ms = opt.connect_timeout_ms;
    }
    if (opt.io_timeout_ms > 0) rcfg.io_timeout_ms = opt.io_timeout_ms;
    rcfg.seed = opt.retry_seed;
    parulel::net::RetryClient client(rcfg);
    bool unavailable = false;
    while (std::getline(std::cin, line)) {
      const std::size_t start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos || line[start] == '#') continue;
      if (opt.echo) std::cout << "> " << line << "\n";
      parulel::net::Response response;
      if (!client.exec(line, response)) {
        // Every endpoint refused for the whole attempt budget: the
        // cluster is dead. One terminal client-side error, then stop —
        // retrying the rest of the script would just burn the same
        // budget per line.
        std::cout << "err unavailable: " << client.error() << "\n";
        ++errors;
        unavailable = true;
        break;
      }
      print_response(response);
      if (!response.ok()) ++errors;
      if (response.status == "ok quit") break;
    }
    const parulel::RetryStats& rs = client.stats();
    std::cerr << "retry:";
    for (const auto& f : parulel::obs::retry_fields()) {
      std::cerr << ' ' << f.name << '=' << rs.*f.member;
    }
    std::cerr << "\n";
    if (unavailable) return kExitIo;
    return errors == 0 ? kExitOk : kExitRuntime;
  }

  parulel::net::NetClient::Options copts;
  copts.connect_timeout_ms = opt.connect_timeout_ms;
  copts.io_timeout_ms = opt.io_timeout_ms;
  parulel::net::NetClient client(copts);
  if (!client.connect(host, port)) {
    throw IoError(client.error());
  }

  while (std::getline(std::cin, line)) {
    // Blank and comment-only lines produce no response; skip them so
    // request:response stays 1:1.
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    if (opt.echo) std::cout << "> " << line << "\n";
    parulel::net::Response response;
    if (!client.request(line, response)) throw IoError(client.error());
    print_response(response);
    if (!response.ok()) ++errors;
    if (response.status == "ok quit") break;  // server closes after this
  }
  return errors == 0 ? kExitOk : kExitRuntime;
}

/// The parulel_site binary for spawn-mode clusters: explicit flag, then
/// $PARULEL_SITE_BIN, then `parulel_site` next to this executable.
std::string resolve_site_bin(const std::string& flag_value) {
  if (!flag_value.empty()) return flag_value;
  if (const char* env = std::getenv("PARULEL_SITE_BIN"); env && *env) {
    return env;
  }
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n > 0) {
    self[n] = '\0';
    std::string dir(self);
    const auto slash = dir.rfind('/');
    if (slash != std::string::npos) {
      return dir.substr(0, slash + 1) + "parulel_site";
    }
  }
  return "parulel_site";  // hope for $PATH
}

int run_cli(const Options& opt) {
  std::ifstream in(opt.program_path);
  if (!in) throw IoError("cannot open " + opt.program_path);
  std::stringstream buffer;
  buffer << in.rdbuf();

  const parulel::Program program = parulel::parse_program(buffer.str());
  if (opt.compile_dump) {
    // Print the bytecode listing the compiled matcher would execute and
    // stop: the listing is deterministic, so it can be diffed across
    // runs (the run summary cannot — it carries wall-clock times).
    std::cout << parulel::compile_listing(program);
    return kExitOk;
  }
  std::cout << "loaded: " << program.rules.size() << " rules, "
            << program.meta_rules.size() << " meta-rules, "
            << program.schema.size() << " templates, "
            << program.initial_facts.size() << " initial facts\n";

  std::ofstream trace_file;
  std::unique_ptr<parulel::obs::TraceSink> trace_sink;
  if (!opt.trace_json_path.empty()) {
    trace_file.open(opt.trace_json_path);
    if (!trace_file) {
      throw IoError("cannot open " + opt.trace_json_path + " for writing");
    }
    trace_sink = std::make_unique<parulel::obs::TraceSink>(trace_file);
  }
  parulel::obs::MetricsRegistry registry;
  const bool want_metrics = opt.metrics || !opt.metrics_json_path.empty();

  parulel::TerminationReason termination = parulel::TerminationReason::Unknown;

  if (opt.cluster_sites > 0) {
    parulel::ClusterConfig cfg;
    cfg.sites = opt.cluster_sites;
    cfg.program_path = opt.program_path;
    cfg.port = opt.cluster_port;
    cfg.spawn = opt.cluster_spawn;
    if (cfg.spawn) cfg.site_bin = resolve_site_bin(opt.cluster_bin);
    cfg.journal_dir = opt.service.journal.dir;
    cfg.partition_spec = opt.partition_spec_raw;
    cfg.fault_spec = opt.fault_plan_spec;
    if (!opt.fault_plan_spec.empty()) {
      cfg.faults = parulel::FaultPlan::parse(opt.fault_plan_spec);
    }
    cfg.max_cycles = opt.max_cycles;
    if (opt.checkpoint_every > 0) cfg.checkpoint_every = opt.checkpoint_every;
    cfg.fsync = opt.service.journal.fsync;
    cfg.log = opt.trace ? &std::cout : nullptr;

    parulel::ClusterDriver driver(program, cfg);
    const parulel::ClusterOutcome out = driver.run();

    std::cout << "[cluster] " << cfg.sites << " site processes, "
              << out.cycles << " barriers, "
              << (out.halted ? "halted"
                             : out.quiescent ? "quiescent" : "cycle-limit")
              << ", " << out.facts << " facts\n";
    const parulel::ClusterStats& cs = out.stats;
    std::cout << "cluster: sent " << cs.sent << ", applied " << cs.applied
              << ", dup-suppressed " << cs.dup_suppressed << ", retries "
              << cs.retries << ", dropped " << cs.dropped << ", kills "
              << cs.kills << ", restores " << cs.restores << ", batches "
              << cs.batches << ", snapshots " << cs.snapshots << "\n";
    std::cout << "global fingerprint: " << std::hex << out.fingerprint
              << std::dec << "\n";
    if (want_metrics) cs.publish(registry);
    if (opt.metrics) std::cout << "metrics:\n" << registry.to_text();
    if (!opt.metrics_json_path.empty()) {
      std::ofstream mf(opt.metrics_json_path);
      if (!mf) {
        throw IoError("cannot open " + opt.metrics_json_path +
                      " for writing");
      }
      mf << registry.to_json() << "\n";
    }
    if (!out.halted && !out.quiescent) {
      std::cerr << "run truncated: hit --max-cycles before quiescence\n";
      return kExitCycleLimit;
    }
    return kExitOk;
  }

  if (opt.engine_kind == "dist") {
    parulel::DistConfig cfg;
    cfg.sites = opt.sites;
    cfg.max_cycles = opt.max_cycles;
    cfg.trace_cycles = opt.trace;
    cfg.output = &std::cout;
    cfg.checkpoint_every = opt.checkpoint_every;
    if (!opt.fault_plan_spec.empty()) {
      cfg.faults = parulel::FaultPlan::parse(opt.fault_plan_spec);
    }
    cfg.trace = trace_sink.get();
    if (want_metrics) cfg.metrics = &registry;

    parulel::PartitionScheme scheme(program, opt.partition);
    parulel::DistributedEngine engine(program, std::move(scheme), cfg);
    engine.assert_initial_facts();
    const parulel::DistStats stats = engine.run();
    termination = stats.run.termination;

    std::cout << "[distributed] " << stats.run.summary() << "\n";
    std::cout << "dist: " << opt.sites << " sites, " << stats.messages
              << " messages, " << stats.broadcasts << " broadcasts\n";
    if (cfg.faults.enabled() || cfg.checkpoint_every > 0) {
      const auto& f = stats.faults;
      std::cout << "faults: sent " << f.sent << ", delivered " << f.delivered
                << ", dropped " << f.dropped << ", retries " << f.retries
                << ", dup-suppressed " << f.dup_suppressed << ", crashes "
                << f.crashes << ", restores " << f.restores
                << ", checkpoints " << f.checkpoints << "\n";
    }
    std::cout << "global fingerprint: " << std::hex
              << engine.global_fingerprint() << std::dec << "\n";
    if (opt.dump_wm) {
      for (unsigned s = 0; s < engine.site_count(); ++s) {
        const auto& wm = engine.site_wm(s);
        std::cout << "site " << s << " working memory (" << wm.alive_count()
                  << " facts):\n";
        dump_working_memory(wm, program);
      }
    }
  } else {
    parulel::EngineConfig cfg;
    cfg.threads = opt.threads;
    cfg.max_cycles = opt.max_cycles;
    cfg.trace_cycles = opt.trace;
    cfg.strategy = opt.strategy;
    cfg.output = &std::cout;
    cfg.trace = trace_sink.get();
    if (want_metrics) cfg.metrics = &registry;

    std::unique_ptr<parulel::Engine> engine;
    if (opt.engine_kind == "par") {
      // Any TREAT-family matcher works under the parallel engine; the
      // sharded parallel matcher is only the default.
      cfg.matcher = opt.matcher_explicit
                        ? opt.seq_matcher
                        : parulel::MatcherKind::ParallelTreat;
      engine = std::make_unique<parulel::ParallelEngine>(program, cfg);
    } else {
      cfg.matcher = opt.seq_matcher;
      engine = std::make_unique<parulel::SequentialEngine>(program, cfg);
    }

    engine->assert_initial_facts();
    const parulel::RunStats stats = engine->run();
    termination = stats.termination;
    std::cout << "[" << engine->name() << "] " << stats.summary() << "\n";

    if (opt.trace) {
      std::cout << "cycle  conflict-set  redacted  fired  asserts  retracts"
                   "  wconf\n";
      for (const auto& c : stats.per_cycle) {
        std::cout << "  " << c.cycle << "\t" << c.conflict_set_size << "\t\t"
                  << c.redacted << "\t  " << c.fired << "\t " << c.asserts
                  << "\t  " << c.retracts << "\t  " << c.write_conflicts
                  << "\n";
      }
    }
    if (opt.dump_wm) {
      const auto& wm = engine->wm();
      std::cout << "final working memory (" << wm.alive_count()
                << " facts):\n";
      dump_working_memory(wm, program);
    }
  }

  if (trace_sink) {
    std::cout << "trace: " << trace_sink->events() << " events -> "
              << opt.trace_json_path << "\n";
  }
  if (opt.metrics) std::cout << "metrics:\n" << registry.to_text();
  if (!opt.metrics_json_path.empty()) {
    std::ofstream mf(opt.metrics_json_path);
    if (!mf) {
      throw IoError("cannot open " + opt.metrics_json_path + " for writing");
    }
    mf << registry.to_json() << "\n";
  }

  if (termination == parulel::TerminationReason::CycleLimit) {
    std::cerr << "run truncated: hit --max-cycles before quiescence\n";
    return kExitCycleLimit;
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0)) {
      print_usage(std::cout);
      return kExitOk;
    }
    if (argc >= 2 && std::strcmp(argv[1], "--help-markdown") == 0) {
      print_usage_markdown(std::cout);
      return kExitOk;
    }
    const Options opt = parse_args(argc, argv);
    switch (opt.mode) {
      case Mode::Serve: return run_serve(opt);
      case Mode::Listen: return run_listen(opt);
      case Mode::Connect: return run_connect(opt);
      case Mode::Run: break;
    }
    return run_cli(opt);
  } catch (const UsageError& e) {
    std::cerr << "usage error: " << e.what() << "\n\n";
    print_usage(std::cerr);
    return kExitUsage;
  } catch (const IoError& e) {
    std::cerr << "io error: " << e.what() << "\n";
    return kExitIo;
  } catch (const parulel::ParseError& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return kExitParse;
  } catch (const parulel::RuntimeError& e) {
    std::cerr << "runtime error: " << e.what() << "\n";
    return kExitRuntime;
  }
}
