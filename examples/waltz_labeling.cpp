// Waltz line labeling: constraint propagation over cube drawings.
//
// Demonstrates the generated Waltz workload (AC-4-style support counting
// with a meta-rule deferring premature pruning) and prints the surviving
// labels per edge of the first cube.
//
// Usage: waltz_labeling [cubes] [threads]
#include <cstdlib>
#include <iostream>
#include <map>

#include "parulel.hpp"

int main(int argc, char** argv) {
  const int cubes = argc > 1 ? std::atoi(argv[1]) : 8;
  const unsigned threads = argc > 2
                               ? static_cast<unsigned>(std::atoi(argv[2]))
                               : parulel::ThreadPool::default_threads();

  const auto workload = parulel::workloads::make_waltz(cubes);
  const parulel::Program program =
      parulel::parse_program(workload.source);

  parulel::EngineConfig cfg;
  cfg.threads = threads;
  cfg.matcher = parulel::MatcherKind::ParallelTreat;
  cfg.trace_cycles = true;
  parulel::ParallelEngine engine(program, cfg);
  engine.assert_initial_facts();
  const parulel::RunStats stats = engine.run();

  std::cout << "waltz: " << workload.description << ", " << threads
            << " threads\n"
            << stats.summary() << "\n\n";

  std::cout << "cycle  conflict-set  redacted  fired\n";
  for (const auto& c : stats.per_cycle) {
    std::cout << "  " << c.cycle << "\t" << c.conflict_set_size << "\t\t"
              << c.redacted << "\t  " << c.fired << "\n";
  }

  // Surviving labels of cube 0.
  const auto& wm = engine.wm();
  const auto& symbols = *program.symbols;
  const auto domain_t =
      *program.schema.find(program.symbols->intern("domain"));
  std::map<std::string, std::string> labels;
  for (parulel::FactId id : wm.extent(domain_t)) {
    const parulel::FactView f = wm.view(id);
    if (f.slot(0) != parulel::Value::integer(0)) continue;
    labels[f.slot(1).to_string(symbols)] +=
        " " + f.slot(2).to_string(symbols);
  }
  std::cout << "\nsurviving labels, cube 0:\n";
  for (const auto& [edge, vals] : labels) {
    std::cout << "  " << edge << ":" << vals << "\n";
  }
  return 0;
}
