// Miss Manners: programmable conflict resolution with meta-rules.
//
// The seating program proposes every feasible next guest at once; the
// defmetarule set redacts all but one proposal per cycle. Run it and
// watch the conflict-set column: large sets, one firing — exactly the
// behaviour hard-wired strategies produced in OPS5, now expressed as
// rules.
//
// Usage: manners_dinner [guests] [hobbies] [seed]
#include <cstdlib>
#include <iostream>

#include "parulel.hpp"

int main(int argc, char** argv) {
  const int guests = argc > 1 ? std::atoi(argv[1]) : 16;
  const int hobbies = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 2026;

  const auto workload =
      parulel::workloads::make_manners(guests, hobbies, seed);
  const parulel::Program program =
      parulel::parse_program(workload.source);

  parulel::EngineConfig cfg;
  cfg.threads = parulel::ThreadPool::default_threads();
  cfg.matcher = parulel::MatcherKind::ParallelTreat;
  cfg.trace_cycles = true;
  parulel::ParallelEngine engine(program, cfg);
  engine.assert_initial_facts();
  const parulel::RunStats stats = engine.run();

  std::cout << "manners: " << workload.description << "\n"
            << stats.summary() << "\n\n";
  std::cout << "cycle  proposals  redacted  fired\n";
  for (const auto& c : stats.per_cycle) {
    std::cout << "  " << c.cycle << "\t " << c.conflict_set_size << "\t   "
              << c.redacted << "\t    " << c.fired << "\n";
  }

  const auto& wm = engine.wm();
  const auto seated_t =
      *program.schema.find(program.symbols->intern("seated"));
  std::cout << "\nguests seated: " << wm.extent(seated_t).size() << " / "
            << guests << "\n";
  return wm.extent(seated_t).size() ==
                 static_cast<std::size_t>(guests)
             ? 0
             : 1;
}
