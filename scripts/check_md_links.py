#!/usr/bin/env python3
"""Doc-lint: every relative markdown link must point at a real file.

Scans the repo's *.md files for inline links/images `[text](target)`
and bare `see FILE.md` style references, resolves relative targets
against the containing file, and fails listing every dangling one.
External (scheme://, mailto:) and pure-anchor (#...) targets are
skipped — this is a file-existence check, not a crawler.

Usage: scripts/check_md_links.py [REPO_ROOT]
Exit 0 when every link resolves; 1 otherwise.
"""

import pathlib
import re
import sys

# [text](target) and ![alt](target); target up to the first ')' or space
# (titles like (file.md "Title") keep only the path part).
INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_DIRS = {".git", "build", "_build", "node_modules"}


def md_files(root: pathlib.Path):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(p.name for p in path.parents):
            yield path


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else
                        pathlib.Path(__file__).resolve().parent.parent)
    dangling = []
    checked = 0
    for md in md_files(root):
        text = md.read_text(encoding="utf-8")
        # Strip fenced code blocks: shell snippets legitimately mention
        # paths that only exist after a build.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in INLINE.finditer(text):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target) or target.startswith("#"):
                continue  # external URL or in-page anchor
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            checked += 1
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                line = text[:match.start()].count("\n") + 1
                dangling.append(f"{md.relative_to(root)}:{line}: "
                                f"dangling link -> {target}")

    if dangling:
        print("error: dangling markdown links:", file=sys.stderr)
        for entry in dangling:
            print(f"  {entry}", file=sys.stderr)
        return 1
    print(f"ok: {checked} relative links resolve across "
          f"{sum(1 for _ in md_files(root))} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
