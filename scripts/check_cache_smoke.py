#!/usr/bin/env python3
"""Cachegrind smoke: budget the L1d miss rate of the waltz match loop.

Runs bench/cache_smoke_waltz (a minimal driver that folds the waltz-8
initial fact set through the TREAT matcher) under
`valgrind --tool=cachegrind --cache-sim=yes` and fails when the D1
miss rate exceeds the budget. The struct-of-arrays fact store exists
to keep the match loop's data references dense; this is the check
that notices a layout change quietly walking pointers again.

Like the bench regression gate, the budget is loose on purpose: it
catches cliffs (a return to per-fact heap nodes roughly triples the
miss rate), not percentage-point drift between valgrind versions or
simulated cache geometries.

Usage:
  check_cache_smoke.py BINARY [--budget 8.0] [--reps 20]

Exit codes: 0 ok (or valgrind unavailable — reported, not failed),
1 over budget, 2 usage / malformed output.
"""

import argparse
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("binary", help="path to cache_smoke_waltz")
    ap.add_argument("--budget", type=float, default=8.0,
                    help="max allowed D1 miss rate, percent (default 8.0)")
    ap.add_argument("--reps", type=int, default=20,
                    help="fold repetitions (default 20)")
    args = ap.parse_args()

    if shutil.which("valgrind") is None:
        # Local dev machines routinely lack valgrind; the budget is
        # enforced where it is installed (the CI cachesmoke job).
        print("cache smoke SKIPPED: valgrind not found on PATH")
        return 0

    with tempfile.TemporaryDirectory() as tmp:
        out_file = Path(tmp) / "cachegrind.out"
        cmd = [
            "valgrind", "--tool=cachegrind", "--cache-sim=yes",
            f"--cachegrind-out-file={out_file}",
            args.binary, str(args.reps),
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            sys.exit(f"error: cachegrind run failed ({proc.returncode})")

        # The summary goes to valgrind's stderr, e.g.
        #   ==1234== D1  miss rate:    1.8% (  1.6%   +  3.1%  )
        m = re.search(r"D1\s+miss rate:\s+([\d.]+)%", proc.stderr)
        if not m:
            sys.stderr.write(proc.stderr)
            sys.exit("error: no 'D1 miss rate' line in cachegrind output")
        rate = float(m.group(1))

    verdict = "FAIL" if rate > args.budget else "ok"
    print(f"{verdict}: waltz match loop D1 miss rate {rate:.1f}% "
          f"(budget {args.budget:.1f}%)")
    return 1 if rate > args.budget else 0


if __name__ == "__main__":
    sys.exit(main())
