#!/usr/bin/env python3
"""Doc-lint: the README flag table must match `parulel_cli --help-markdown`.

The table between the `<!-- flags:begin -->` and `<!-- flags:end -->`
markers in README.md is a committed copy of what the CLI generates from
its own flag table. This check regenerates it and fails if the two
differ, so the docs cannot drift from the parser.

Usage: scripts/check_flag_table.py PATH/TO/parulel_cli [README.md]
Exit 0 when in sync; 1 with a unified diff when not.
"""

import difflib
import pathlib
import re
import subprocess
import sys

BEGIN = re.compile(r"<!--\s*flags:begin\b")
END = re.compile(r"<!--\s*flags:end\b")


def extract_committed(readme_text: str) -> list[str]:
    lines = readme_text.splitlines()
    begin = [i for i, l in enumerate(lines) if BEGIN.search(l)]
    end = [i for i, l in enumerate(lines) if END.search(l)]
    if len(begin) != 1 or len(end) != 1 or begin[0] >= end[0]:
        sys.exit("error: README needs exactly one flags:begin/flags:end "
                 "marker pair, begin before end")
    return lines[begin[0] + 1:end[0]]


def main() -> int:
    if len(sys.argv) not in (2, 3):
        sys.exit(f"usage: {sys.argv[0]} PATH/TO/parulel_cli [README.md]")
    cli = sys.argv[1]
    readme = pathlib.Path(
        sys.argv[2] if len(sys.argv) == 3 else
        pathlib.Path(__file__).resolve().parent.parent / "README.md")

    generated = subprocess.run(
        [cli, "--help-markdown"], capture_output=True, text=True, check=True
    ).stdout.splitlines()
    committed = extract_committed(readme.read_text(encoding="utf-8"))

    if committed == generated:
        print(f"ok: README flag table matches {cli} --help-markdown "
              f"({len(generated)} lines)")
        return 0

    print("error: README flag table is out of date. Regenerate the block "
          "between the flags:begin/flags:end markers with "
          "`parulel_cli --help-markdown`:\n", file=sys.stderr)
    sys.stderr.writelines(difflib.unified_diff(
        committed, generated, fromfile="README.md (committed)",
        tofile="--help-markdown (generated)", lineterm=""))
    print(file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
