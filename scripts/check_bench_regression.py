#!/usr/bin/env python3
"""Bench regression gate: compare a fresh BENCH_R-T4.json to the
checked-in baseline and fail on real throughput loss.

The T4 report carries a calibration row (a fixed xorshift spin, timed),
so throughput is first normalized by the spin ratio between the two
runs: a slower CI machine does not read as a code regression, and a
faster one does not mask a real one.

Usage:
  check_bench_regression.py CURRENT.json [--baseline PATH]
                            [--threshold 0.10] [--update]

Exit codes: 0 ok, 1 regression found, 2 usage / malformed input.
"""

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "BENCH_R-T4.json"
METRIC = "throughput_inst_per_ms"


def load_rows(path):
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    rows = {r["label"]: r for r in doc.get("rows", [])}
    if "calibration" not in rows or "spin_ms" not in rows["calibration"]:
        sys.exit(f"error: {path} has no calibration row")
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="freshly generated BENCH_R-T4.json")
    ap.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max allowed normalized throughput loss (default 0.10)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the current report")
    args = ap.parse_args()

    if args.update:
        Path(args.baseline).parent.mkdir(parents=True, exist_ok=True)
        Path(args.baseline).write_text(Path(args.current).read_text())
        print(f"baseline updated: {args.baseline}")
        return 0

    current = load_rows(args.current)
    baseline = load_rows(args.baseline)

    # Fixed work took spin_ms; a machine `scale`x slower than the
    # baseline machine deflates raw throughput by the same factor.
    scale = (current["calibration"]["spin_ms"]
             / baseline["calibration"]["spin_ms"])

    failures = []
    compared = 0
    for label, base in sorted(baseline.items()):
        if label == "calibration" or METRIC not in base:
            continue
        if label not in current:
            failures.append(f"{label}: missing from current report")
            continue
        cur = current[label][METRIC] * scale
        ref = base[METRIC]
        compared += 1
        loss = 1.0 - cur / ref
        marker = "FAIL" if loss > args.threshold else "ok"
        print(f"{marker:4} {label:40} baseline={ref:10.1f} "
              f"normalized={cur:10.1f} ({-loss:+.1%})")
        if loss > args.threshold:
            failures.append(f"{label}: {loss:.1%} below baseline")

    if not compared:
        sys.exit("error: baseline has no throughput rows")
    print(f"\ncalibration scale {scale:.3f}x, "
          f"{compared} configurations, {len(failures)} regressed")
    if failures:
        for f in failures:
            print(f"regression: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
