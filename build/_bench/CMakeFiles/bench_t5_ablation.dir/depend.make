# Empty dependencies file for bench_t5_ablation.
# This may be replaced when dependencies are built.
