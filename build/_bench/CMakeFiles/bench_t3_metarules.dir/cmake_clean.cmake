file(REMOVE_RECURSE
  "../bench/bench_t3_metarules"
  "../bench/bench_t3_metarules.pdb"
  "CMakeFiles/bench_t3_metarules.dir/bench_t3_metarules.cpp.o"
  "CMakeFiles/bench_t3_metarules.dir/bench_t3_metarules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_metarules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
