# Empty dependencies file for bench_t3_metarules.
# This may be replaced when dependencies are built.
