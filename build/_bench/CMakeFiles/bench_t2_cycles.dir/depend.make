# Empty dependencies file for bench_t2_cycles.
# This may be replaced when dependencies are built.
