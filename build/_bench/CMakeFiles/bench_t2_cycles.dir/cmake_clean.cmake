file(REMOVE_RECURSE
  "../bench/bench_t2_cycles"
  "../bench/bench_t2_cycles.pdb"
  "CMakeFiles/bench_t2_cycles.dir/bench_t2_cycles.cpp.o"
  "CMakeFiles/bench_t2_cycles.dir/bench_t2_cycles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
