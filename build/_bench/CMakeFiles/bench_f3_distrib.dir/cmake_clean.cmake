file(REMOVE_RECURSE
  "../bench/bench_f3_distrib"
  "../bench/bench_f3_distrib.pdb"
  "CMakeFiles/bench_f3_distrib.dir/bench_f3_distrib.cpp.o"
  "CMakeFiles/bench_f3_distrib.dir/bench_f3_distrib.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_distrib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
