file(REMOVE_RECURSE
  "../bench/bench_f4_dynamics"
  "../bench/bench_f4_dynamics.pdb"
  "CMakeFiles/bench_f4_dynamics.dir/bench_f4_dynamics.cpp.o"
  "CMakeFiles/bench_f4_dynamics.dir/bench_f4_dynamics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
