# Empty dependencies file for bench_f4_dynamics.
# This may be replaced when dependencies are built.
