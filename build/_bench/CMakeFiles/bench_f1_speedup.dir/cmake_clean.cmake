file(REMOVE_RECURSE
  "../bench/bench_f1_speedup"
  "../bench/bench_f1_speedup.pdb"
  "CMakeFiles/bench_f1_speedup.dir/bench_f1_speedup.cpp.o"
  "CMakeFiles/bench_f1_speedup.dir/bench_f1_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
