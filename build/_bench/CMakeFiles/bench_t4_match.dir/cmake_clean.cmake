file(REMOVE_RECURSE
  "../bench/bench_t4_match"
  "../bench/bench_t4_match.pdb"
  "CMakeFiles/bench_t4_match.dir/bench_t4_match.cpp.o"
  "CMakeFiles/bench_t4_match.dir/bench_t4_match.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
