# Empty dependencies file for bench_t4_match.
# This may be replaced when dependencies are built.
