# Empty compiler generated dependencies file for bench_f2_breakdown.
# This may be replaced when dependencies are built.
