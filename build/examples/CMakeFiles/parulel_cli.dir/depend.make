# Empty dependencies file for parulel_cli.
# This may be replaced when dependencies are built.
