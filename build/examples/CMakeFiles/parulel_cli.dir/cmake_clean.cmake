file(REMOVE_RECURSE
  "CMakeFiles/parulel_cli.dir/parulel_cli.cpp.o"
  "CMakeFiles/parulel_cli.dir/parulel_cli.cpp.o.d"
  "parulel_cli"
  "parulel_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parulel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
