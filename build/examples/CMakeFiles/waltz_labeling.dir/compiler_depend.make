# Empty compiler generated dependencies file for waltz_labeling.
# This may be replaced when dependencies are built.
