file(REMOVE_RECURSE
  "CMakeFiles/waltz_labeling.dir/waltz_labeling.cpp.o"
  "CMakeFiles/waltz_labeling.dir/waltz_labeling.cpp.o.d"
  "waltz_labeling"
  "waltz_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waltz_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
