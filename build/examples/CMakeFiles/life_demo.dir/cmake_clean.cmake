file(REMOVE_RECURSE
  "CMakeFiles/life_demo.dir/life_demo.cpp.o"
  "CMakeFiles/life_demo.dir/life_demo.cpp.o.d"
  "life_demo"
  "life_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/life_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
