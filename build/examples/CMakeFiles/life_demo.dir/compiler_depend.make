# Empty compiler generated dependencies file for life_demo.
# This may be replaced when dependencies are built.
