file(REMOVE_RECURSE
  "CMakeFiles/manners_dinner.dir/manners_dinner.cpp.o"
  "CMakeFiles/manners_dinner.dir/manners_dinner.cpp.o.d"
  "manners_dinner"
  "manners_dinner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manners_dinner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
