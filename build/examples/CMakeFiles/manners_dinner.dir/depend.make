# Empty dependencies file for manners_dinner.
# This may be replaced when dependencies are built.
