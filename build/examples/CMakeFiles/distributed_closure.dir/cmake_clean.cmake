file(REMOVE_RECURSE
  "CMakeFiles/distributed_closure.dir/distributed_closure.cpp.o"
  "CMakeFiles/distributed_closure.dir/distributed_closure.cpp.o.d"
  "distributed_closure"
  "distributed_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
