# Empty dependencies file for distributed_closure.
# This may be replaced when dependencies are built.
