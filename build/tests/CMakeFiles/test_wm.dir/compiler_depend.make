# Empty compiler generated dependencies file for test_wm.
# This may be replaced when dependencies are built.
