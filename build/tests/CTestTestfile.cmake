# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_support "/root/repo/build/tests/test_support")
set_tests_properties(test_support PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_runtime "/root/repo/build/tests/test_runtime")
set_tests_properties(test_runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_wm "/root/repo/build/tests/test_wm")
set_tests_properties(test_wm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_lang "/root/repo/build/tests/test_lang")
set_tests_properties(test_lang PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_match "/root/repo/build/tests/test_match")
set_tests_properties(test_match PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_meta "/root/repo/build/tests/test_meta")
set_tests_properties(test_meta PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_engine "/root/repo/build/tests/test_engine")
set_tests_properties(test_engine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_distrib "/root/repo/build/tests/test_distrib")
set_tests_properties(test_distrib PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workloads "/root/repo/build/tests/test_workloads")
set_tests_properties(test_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_equivalence "/root/repo/build/tests/test_equivalence")
set_tests_properties(test_equivalence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_random_programs "/root/repo/build/tests/test_random_programs")
set_tests_properties(test_random_programs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_features "/root/repo/build/tests/test_features")
set_tests_properties(test_features PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_strategy "/root/repo/build/tests/test_strategy")
set_tests_properties(test_strategy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_actions "/root/repo/build/tests/test_actions")
set_tests_properties(test_actions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
