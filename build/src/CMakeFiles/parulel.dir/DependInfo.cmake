
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/distrib/copy_constrain.cpp" "src/CMakeFiles/parulel.dir/distrib/copy_constrain.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/distrib/copy_constrain.cpp.o.d"
  "/root/repo/src/distrib/dist_engine.cpp" "src/CMakeFiles/parulel.dir/distrib/dist_engine.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/distrib/dist_engine.cpp.o.d"
  "/root/repo/src/distrib/partition.cpp" "src/CMakeFiles/parulel.dir/distrib/partition.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/distrib/partition.cpp.o.d"
  "/root/repo/src/engine/actions.cpp" "src/CMakeFiles/parulel.dir/engine/actions.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/engine/actions.cpp.o.d"
  "/root/repo/src/engine/par_engine.cpp" "src/CMakeFiles/parulel.dir/engine/par_engine.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/engine/par_engine.cpp.o.d"
  "/root/repo/src/engine/seq_engine.cpp" "src/CMakeFiles/parulel.dir/engine/seq_engine.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/engine/seq_engine.cpp.o.d"
  "/root/repo/src/engine/strategy.cpp" "src/CMakeFiles/parulel.dir/engine/strategy.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/engine/strategy.cpp.o.d"
  "/root/repo/src/lang/analyzer.cpp" "src/CMakeFiles/parulel.dir/lang/analyzer.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/lang/analyzer.cpp.o.d"
  "/root/repo/src/lang/expr.cpp" "src/CMakeFiles/parulel.dir/lang/expr.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/lang/expr.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/CMakeFiles/parulel.dir/lang/lexer.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/lang/lexer.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/CMakeFiles/parulel.dir/lang/parser.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/lang/parser.cpp.o.d"
  "/root/repo/src/lang/printer.cpp" "src/CMakeFiles/parulel.dir/lang/printer.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/lang/printer.cpp.o.d"
  "/root/repo/src/lang/program.cpp" "src/CMakeFiles/parulel.dir/lang/program.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/lang/program.cpp.o.d"
  "/root/repo/src/match/alpha.cpp" "src/CMakeFiles/parulel.dir/match/alpha.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/match/alpha.cpp.o.d"
  "/root/repo/src/match/conflict_set.cpp" "src/CMakeFiles/parulel.dir/match/conflict_set.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/match/conflict_set.cpp.o.d"
  "/root/repo/src/match/join.cpp" "src/CMakeFiles/parulel.dir/match/join.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/match/join.cpp.o.d"
  "/root/repo/src/match/parallel_treat.cpp" "src/CMakeFiles/parulel.dir/match/parallel_treat.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/match/parallel_treat.cpp.o.d"
  "/root/repo/src/match/rete.cpp" "src/CMakeFiles/parulel.dir/match/rete.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/match/rete.cpp.o.d"
  "/root/repo/src/match/treat.cpp" "src/CMakeFiles/parulel.dir/match/treat.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/match/treat.cpp.o.d"
  "/root/repo/src/meta/meta_engine.cpp" "src/CMakeFiles/parulel.dir/meta/meta_engine.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/meta/meta_engine.cpp.o.d"
  "/root/repo/src/meta/reify.cpp" "src/CMakeFiles/parulel.dir/meta/reify.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/meta/reify.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/CMakeFiles/parulel.dir/runtime/thread_pool.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/runtime/thread_pool.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/parulel.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/symbol_table.cpp" "src/CMakeFiles/parulel.dir/support/symbol_table.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/support/symbol_table.cpp.o.d"
  "/root/repo/src/support/value.cpp" "src/CMakeFiles/parulel.dir/support/value.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/support/value.cpp.o.d"
  "/root/repo/src/wm/schema.cpp" "src/CMakeFiles/parulel.dir/wm/schema.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/wm/schema.cpp.o.d"
  "/root/repo/src/wm/working_memory.cpp" "src/CMakeFiles/parulel.dir/wm/working_memory.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/wm/working_memory.cpp.o.d"
  "/root/repo/src/workloads/life.cpp" "src/CMakeFiles/parulel.dir/workloads/life.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/workloads/life.cpp.o.d"
  "/root/repo/src/workloads/manners.cpp" "src/CMakeFiles/parulel.dir/workloads/manners.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/workloads/manners.cpp.o.d"
  "/root/repo/src/workloads/routing.cpp" "src/CMakeFiles/parulel.dir/workloads/routing.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/workloads/routing.cpp.o.d"
  "/root/repo/src/workloads/sieve.cpp" "src/CMakeFiles/parulel.dir/workloads/sieve.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/workloads/sieve.cpp.o.d"
  "/root/repo/src/workloads/synth.cpp" "src/CMakeFiles/parulel.dir/workloads/synth.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/workloads/synth.cpp.o.d"
  "/root/repo/src/workloads/tc.cpp" "src/CMakeFiles/parulel.dir/workloads/tc.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/workloads/tc.cpp.o.d"
  "/root/repo/src/workloads/waltz.cpp" "src/CMakeFiles/parulel.dir/workloads/waltz.cpp.o" "gcc" "src/CMakeFiles/parulel.dir/workloads/waltz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
