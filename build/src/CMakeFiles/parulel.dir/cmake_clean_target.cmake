file(REMOVE_RECURSE
  "libparulel.a"
)
