# Empty dependencies file for parulel.
# This may be replaced when dependencies are built.
