// Rule-service tests: long-lived sessions with incremental ingestion.
//
// The tentpole correctness gate is the interleaving sweep: for a
// confluent program, feeding the external fact stream in ANY batching —
// one batch, many batches, shuffled order — through a retained session
// must reach the same final working-memory fingerprint as a single
// batch run, across matchers and thread counts, with the session's
// rebuild counter pinned at 0 (the matcher network is reused, never
// reconstructed) while the matcher's external_deltas counter grows by
// one per ingested batch.
//
// Around it: session quotas, snapshot/restore, query filtering, and the
// RuleService behaviors — batching, backpressure rejection, flush
// determinism, concurrent multi-session ingestion, idle eviction.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "service/serve.hpp"
#include "service/service.hpp"
#include "service/session.hpp"
#include "workloads/workloads.hpp"

namespace parulel::service {
namespace {

// --------------------------------------------------------------- helpers

struct Fixture {
  Program program;
  explicit Fixture(const std::string& source)
      : program(parse_program(source)) {}
};

SessionConfig session_config(MatcherKind matcher, unsigned threads,
                             bool initial_facts) {
  SessionConfig cfg;
  cfg.matcher = matcher;
  cfg.threads = threads;
  cfg.assert_initial_facts = initial_facts;
  return cfg;
}

/// Feed `facts` into a fresh session as `batches` shuffled slices, with
/// one run_to_quiescence per slice. Returns the final fingerprint and
/// checks the delta-reuse invariant on the way out.
std::uint64_t run_interleaved(const Program& program, MatcherKind matcher,
                              unsigned threads,
                              const std::vector<GroundFact>& facts,
                              std::size_t batches, std::uint64_t seed) {
  std::vector<GroundFact> order = facts;
  std::mt19937_64 rng(seed);
  std::shuffle(order.begin(), order.end(), rng);

  Session session(program, session_config(matcher, threads, false));
  const std::size_t per =
      std::max<std::size_t>(1, (order.size() + batches - 1) / batches);
  std::size_t fed_batches = 0;
  for (std::size_t start = 0; start < order.size(); start += per) {
    const std::size_t end = std::min(order.size(), start + per);
    for (std::size_t i = start; i < end; ++i) {
      session.assert_fact(order[i].tmpl, order[i].slots);
    }
    session.run_to_quiescence();
    ++fed_batches;
  }
  EXPECT_EQ(session.counters().rebuilds, 0u)
      << "incremental ingestion must never rebuild the matcher";
  EXPECT_EQ(session.match_stats().external_deltas, fed_batches)
      << "each external batch must be folded into the retained network";
  return session.fingerprint();
}

std::uint64_t run_single_batch(const Program& program,
                               const std::vector<GroundFact>& facts) {
  Session session(program,
                  session_config(MatcherKind::Treat, 1, false));
  for (const GroundFact& f : facts) session.assert_fact(f.tmpl, f.slots);
  session.run_to_quiescence();
  EXPECT_EQ(session.counters().rebuilds, 0u);
  return session.fingerprint();
}

// A one-fact counter that never quiesces: bump forever.
constexpr const char* kRunawaySource = R"((deftemplate n (slot v))
(defrule bump ?f <- (n (v ?x)) => (retract ?f) (assert (n (v (+ ?x 1)))))
(deffacts init (n (v 0))))";

// item -> seen copy rule; items can be retracted without disturbing the
// derived seen facts.
constexpr const char* kCopySource = R"((deftemplate item (slot v))
(deftemplate seen (slot v))
(defrule copy (item (v ?x)) (not (seen (v ?x))) => (assert (seen (v ?x)))))";

// ------------------------------------- tentpole: interleaving equivalence

struct SweepCase {
  MatcherKind matcher;
  unsigned threads;
};

const SweepCase kSweep[] = {
    {MatcherKind::Treat, 1},
    {MatcherKind::ParallelTreat, 1},
    {MatcherKind::ParallelTreat, 4},
};

void sweep_program(const Program& program) {
  ASSERT_FALSE(program.initial_facts.empty());
  const std::uint64_t reference =
      run_single_batch(program, program.initial_facts);
  for (const SweepCase& sc : kSweep) {
    for (std::size_t batches : {1u, 2u, 5u, 9u}) {
      for (std::uint64_t seed : {7u, 1234u}) {
        EXPECT_EQ(run_interleaved(program, sc.matcher, sc.threads,
                                  program.initial_facts, batches, seed),
                  reference)
            << "matcher=" << static_cast<int>(sc.matcher)
            << " threads=" << sc.threads << " batches=" << batches
            << " seed=" << seed;
      }
    }
  }
}

TEST(InterleavingSweep, TransitiveClosure) {
  Fixture fx(workloads::make_tc(16, 36, 42).source);
  sweep_program(fx.program);
}

TEST(InterleavingSweep, Sieve) {
  Fixture fx(workloads::make_sieve(48, true).source);
  sweep_program(fx.program);
}

TEST(InterleavingSweep, Routing) {
  Fixture fx(workloads::make_routing(14, 30, 7).source);
  sweep_program(fx.program);
}

// ------------------------------------------------------ session behavior

TEST(Session, RetainedStateAcrossRuns) {
  Fixture fx(kCopySource);
  Session session(fx.program, session_config(MatcherKind::Treat, 1, false));
  const TemplateId item = *session.find_template("item");
  const TemplateId seen = *session.find_template("seen");

  session.assert_fact(item, {Value::integer(1)});
  session.run_to_quiescence();
  EXPECT_EQ(session.query(seen, {}).size(), 1u);

  session.assert_fact(item, {Value::integer(2)});
  session.assert_fact(item, {Value::integer(3)});
  const RunStats second = session.run_to_quiescence();
  EXPECT_GT(second.total_firings, 0u);
  EXPECT_EQ(session.query(seen, {}).size(), 3u);

  EXPECT_EQ(session.counters().rebuilds, 0u);
  EXPECT_EQ(session.match_stats().external_deltas, 2u);
}

TEST(Session, RetractAndModifyBetweenRuns) {
  Fixture fx(kCopySource);
  Session session(fx.program, session_config(MatcherKind::Treat, 1, false));
  const TemplateId item = *session.find_template("item");
  const TemplateId seen = *session.find_template("seen");

  FactId first = kInvalidFact;
  ASSERT_EQ(session.assert_fact(item, {Value::integer(1)}, &first),
            Session::AssertOutcome::New);
  session.assert_fact(item, {Value::integer(2)});
  session.run_to_quiescence();
  ASSERT_EQ(session.query(seen, {}).size(), 2u);

  // Retract one source fact: the derived facts stay (no truth
  // maintenance), the source extent shrinks.
  EXPECT_TRUE(session.retract(first));
  session.run_to_quiescence();
  EXPECT_EQ(session.query(item, {}).size(), 1u);
  EXPECT_EQ(session.query(seen, {}).size(), 2u);

  // Modify the survivor to a fresh value: its copy is derived next run.
  const std::vector<FactId> items = session.query(item, {});
  ASSERT_EQ(items.size(), 1u);
  const int slot = *session.find_slot(item, "v");
  EXPECT_NE(session.modify(items[0], {{slot, Value::integer(9)}}),
            kInvalidFact);
  session.run_to_quiescence();
  EXPECT_EQ(session.query(seen, {}).size(), 3u);
  EXPECT_EQ(session.counters().rebuilds, 0u);
}

TEST(Session, DuplicateAssertAbsorbed) {
  Fixture fx(kCopySource);
  Session session(fx.program, session_config(MatcherKind::Treat, 1, false));
  const TemplateId item = *session.find_template("item");
  EXPECT_EQ(session.assert_fact(item, {Value::integer(5)}),
            Session::AssertOutcome::New);
  EXPECT_EQ(session.assert_fact(item, {Value::integer(5)}),
            Session::AssertOutcome::Absorbed);
  session.run_to_quiescence();
  EXPECT_EQ(session.query(item, {}).size(), 1u);
}

TEST(Session, FactQuotaRejectsAsserts) {
  Fixture fx(kCopySource);
  SessionConfig cfg = session_config(MatcherKind::Treat, 1, false);
  cfg.fact_quota = 2;
  Session session(fx.program, cfg);
  const TemplateId item = *session.find_template("item");
  EXPECT_EQ(session.assert_fact(item, {Value::integer(1)}),
            Session::AssertOutcome::New);
  EXPECT_EQ(session.assert_fact(item, {Value::integer(2)}),
            Session::AssertOutcome::New);
  EXPECT_EQ(session.assert_fact(item, {Value::integer(3)}),
            Session::AssertOutcome::QuotaRejected);
  EXPECT_EQ(session.counters().quota_rejected, 1u);
}

TEST(Session, CycleQuotaTruncatesRunaway) {
  Fixture fx(kRunawaySource);
  SessionConfig cfg = session_config(MatcherKind::Treat, 1, true);
  cfg.cycle_quota = 16;
  Session session(fx.program, cfg);
  const RunStats stats = session.run_to_quiescence();
  EXPECT_EQ(stats.cycles, 16u);
  EXPECT_EQ(stats.termination, TerminationReason::CycleLimit);
  // The next batch resumes exactly where the quota cut the last one off.
  const RunStats next = session.run_to_quiescence();
  EXPECT_EQ(next.cycles, 16u);
  EXPECT_EQ(session.counters().cycles, 32u);
}

TEST(Session, SnapshotRestoreRoundTrip) {
  Fixture fx(workloads::make_tc(12, 26, 3).source);
  Session session(fx.program,
                  session_config(MatcherKind::ParallelTreat, 2, true));
  session.run_to_quiescence();
  const std::uint64_t at_fixpoint = session.fingerprint();
  const SiteCheckpoint checkpoint = session.snapshot();
  EXPECT_EQ(session.counters().rebuilds, 0u);

  // Mutate past the snapshot, then restore: the fingerprint returns.
  const TemplateId edge = *session.find_template("edge");
  session.assert_fact(edge, {Value::integer(0), Value::integer(11)});
  session.run_to_quiescence();
  EXPECT_NE(session.fingerprint(), at_fixpoint);

  session.restore(checkpoint);
  EXPECT_EQ(session.counters().rebuilds, 1u)
      << "restore is the one sanctioned rebuild";
  EXPECT_EQ(session.fingerprint(), at_fixpoint);
  // Re-running from the restored state stays at the fixpoint.
  session.run_to_quiescence();
  EXPECT_EQ(session.fingerprint(), at_fixpoint);
}

TEST(Session, QuerySlotFilters) {
  Fixture fx(kCopySource);
  Session session(fx.program, session_config(MatcherKind::Treat, 1, false));
  const TemplateId item = *session.find_template("item");
  const int slot = *session.find_slot(item, "v");
  for (int v : {1, 2, 3, 2}) {
    session.assert_fact(item, {Value::integer(v)});
  }
  session.run_to_quiescence();
  EXPECT_EQ(session.query(item, {}).size(), 3u);
  EXPECT_EQ(session.query(item, {{slot, Value::integer(2)}}).size(), 1u);
  EXPECT_EQ(session.query(item, {{slot, Value::integer(7)}}).size(), 0u);
  // Results are in ascending FactId order.
  const std::vector<FactId> all = session.query(item, {});
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

// ------------------------------------------------------ service behavior

ServiceConfig sync_config() {
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.pool_threads = 2;
  return cfg;
}

TEST(Service, SyncFlushCommitsInBatches) {
  Fixture fx(kCopySource);
  ServiceConfig cfg = sync_config();
  cfg.batch_max = 4;
  RuleService service(cfg);
  const SessionId id = service.open_session(fx.program);
  ASSERT_NE(id, 0u);

  TemplateId item = kInvalidTemplate;
  service.with_session(id, [&](Session& s) {
    item = *s.find_template("item");
  });
  for (int v = 0; v < 10; ++v) {
    EXPECT_EQ(service.submit(
                  id, Request::make_assert(item, {Value::integer(v)})),
              SubmitResult::Accepted);
  }
  EXPECT_EQ(service.submit(id, Request::make_run()), SubmitResult::Accepted);
  EXPECT_EQ(service.queue_depth(id), 11u);
  EXPECT_TRUE(service.flush(id));
  EXPECT_EQ(service.queue_depth(id), 0u);

  service.with_session(id, [&](Session& s) {
    const TemplateId seen = *s.find_template("seen");
    EXPECT_EQ(s.query(seen, {}).size(), 10u);
    EXPECT_EQ(s.counters().rebuilds, 0u);
  });
  const ServiceStats stats = service.stats_snapshot();
  EXPECT_EQ(stats.requests, 11u);
  EXPECT_EQ(stats.asserts, 10u);
  EXPECT_EQ(stats.runs, 1u);
  EXPECT_EQ(stats.batches, 3u);  // ceil(11 / 4)
  EXPECT_EQ(stats.batched_ops, 11u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GE(stats.latency_p99_ns, stats.latency_p50_ns);
  EXPECT_GE(stats.latency_max_ns, stats.latency_p99_ns);
}

TEST(Service, BackpressureRejectsWhenQueueFull) {
  Fixture fx(kCopySource);
  ServiceConfig cfg = sync_config();
  cfg.queue_capacity = 4;
  RuleService service(cfg);
  const SessionId id = service.open_session(fx.program);
  TemplateId item = kInvalidTemplate;
  service.with_session(id, [&](Session& s) {
    item = *s.find_template("item");
  });

  unsigned accepted = 0, rejected = 0;
  for (int v = 0; v < 10; ++v) {
    const SubmitResult r =
        service.submit(id, Request::make_assert(item, {Value::integer(v)}));
    (r == SubmitResult::Accepted ? accepted : rejected)++;
    if (r != SubmitResult::Accepted) {
      EXPECT_EQ(r, SubmitResult::QueueFull);
    }
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(rejected, 6u);
  EXPECT_TRUE(service.flush(id));
  service.with_session(id, [&](Session& s) {
    EXPECT_EQ(s.query(item, {}).size(), 4u);
  });
  EXPECT_EQ(service.stats_snapshot().rejected, 6u);
}

TEST(Service, SubmitToUnknownOrClosedSession) {
  Fixture fx(kCopySource);
  RuleService service(sync_config());
  EXPECT_EQ(service.submit(99, Request::make_run()),
            SubmitResult::NoSuchSession);
  const SessionId id = service.open_session(fx.program);
  EXPECT_TRUE(service.close_session(id));
  EXPECT_FALSE(service.close_session(id));
  EXPECT_EQ(service.submit(id, Request::make_run()),
            SubmitResult::NoSuchSession);
  EXPECT_EQ(service.session_count(), 0u);
}

TEST(Service, CapacityPressureEvictsOldestIdle) {
  Fixture fx(kCopySource);
  ServiceConfig cfg = sync_config();
  cfg.max_sessions = 2;
  RuleService service(cfg);
  const SessionId s1 = service.open_session(fx.program);
  const SessionId s2 = service.open_session(fx.program);
  ASSERT_NE(s1, 0u);
  ASSERT_NE(s2, 0u);

  // Touch s2 so s1 is the least-recently-active session.
  service.submit(s2, Request::make_run());
  service.flush(s2);

  const SessionId s3 = service.open_session(fx.program);
  EXPECT_NE(s3, 0u);
  EXPECT_EQ(service.session_count(), 2u);
  EXPECT_EQ(service.submit(s1, Request::make_run()),
            SubmitResult::NoSuchSession);
  EXPECT_EQ(service.submit(s2, Request::make_run()), SubmitResult::Accepted);
  const ServiceStats stats = service.stats_snapshot();
  EXPECT_EQ(stats.evicted, 1u);
  EXPECT_EQ(stats.sessions_opened, 3u);
  EXPECT_EQ(stats.sessions_closed, 1u);
}

TEST(Service, AgeBasedIdleEviction) {
  Fixture fx(kCopySource);
  ServiceConfig cfg = sync_config();
  cfg.idle_eviction_age = 1;
  RuleService service(cfg);
  const SessionId s1 = service.open_session(fx.program);
  const SessionId s2 = service.open_session(fx.program);

  service.submit(s1, Request::make_run());
  service.flush(s1);  // tick 1, s1 active at 1
  service.submit(s2, Request::make_run());
  service.flush(s2);  // tick 2, s2 active at 2
  service.submit(s2, Request::make_run());
  service.flush(s2);  // tick 3, s2 active at 3

  // s1 idle for 2 ticks >= age 1; s2 active this tick.
  EXPECT_EQ(service.evict_idle(), 1u);
  EXPECT_EQ(service.submit(s1, Request::make_run()),
            SubmitResult::NoSuchSession);
  EXPECT_EQ(service.submit(s2, Request::make_run()), SubmitResult::Accepted);
}

TEST(Service, InterleavedSessionsReachSameFixpoint) {
  Fixture fx(workloads::make_tc(14, 30, 11).source);
  const std::uint64_t reference =
      run_single_batch(fx.program, fx.program.initial_facts);

  for (unsigned workers : {0u, 2u}) {
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.pool_threads = 2;
    cfg.batch_max = 8;
    RuleService service(cfg);

    // Three sessions fed the same stream in different interleavings:
    // round-robin across sessions, per-session shuffled order.
    constexpr std::size_t kSessions = 3;
    std::vector<SessionId> ids;
    std::vector<std::vector<GroundFact>> streams;
    for (std::size_t s = 0; s < kSessions; ++s) {
      SessionId id = service.open_session(fx.program);
      ASSERT_NE(id, 0u);
      ids.push_back(id);
      std::vector<GroundFact> order = fx.program.initial_facts;
      std::mt19937_64 rng(100 + s);
      std::shuffle(order.begin(), order.end(), rng);
      streams.push_back(std::move(order));
    }
    for (std::size_t i = 0; i < streams[0].size(); ++i) {
      for (std::size_t s = 0; s < kSessions; ++s) {
        const GroundFact& f = streams[s][i];
        ASSERT_EQ(service.submit(ids[s],
                                 Request::make_assert(f.tmpl, f.slots)),
                  SubmitResult::Accepted);
      }
      if (i % 5 == 0) {
        for (SessionId id : ids) service.submit(id, Request::make_run());
        if (workers == 0) service.flush_all();
      }
    }
    service.flush_all();
    for (SessionId id : ids) {
      service.with_session(id, [&](Session& s) {
        EXPECT_EQ(s.fingerprint(), reference)
            << "workers=" << workers << " session=" << id;
        EXPECT_EQ(s.counters().rebuilds, 0u);
      });
    }
  }
}

TEST(Service, ConcurrentSubmittersConverge) {
  Fixture fx(workloads::make_tc(12, 26, 5).source);
  const std::uint64_t reference =
      run_single_batch(fx.program, fx.program.initial_facts);

  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.pool_threads = 2;
  cfg.queue_capacity = 4096;
  RuleService service(cfg);

  constexpr std::size_t kClients = 4;
  std::vector<SessionId> ids;
  for (std::size_t c = 0; c < kClients; ++c) {
    ids.push_back(service.open_session(fx.program));
    ASSERT_NE(ids.back(), 0u);
  }

  // One client thread per session, all hammering the service at once
  // while the worker threads drain and commit behind them.
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<GroundFact> order = fx.program.initial_facts;
      std::mt19937_64 rng(999 + c);
      std::shuffle(order.begin(), order.end(), rng);
      for (std::size_t i = 0; i < order.size(); ++i) {
        while (service.submit(ids[c], Request::make_assert(
                                          order[i].tmpl, order[i].slots)) ==
               SubmitResult::QueueFull) {
          std::this_thread::yield();
        }
        if (i % 7 == 0) service.submit(ids[c], Request::make_run());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  service.flush_all();

  for (SessionId id : ids) {
    service.with_session(id, [&](Session& s) {
      EXPECT_EQ(s.fingerprint(), reference);
      EXPECT_EQ(s.counters().rebuilds, 0u);
      EXPECT_GT(s.match_stats().external_deltas, 0u);
    });
  }
  const ServiceStats stats = service.stats_snapshot();
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// -------------------------------------------------- serve line protocol

TEST(Serve, ScriptedSessionIsDeterministic) {
  const std::string script =
      "# a scripted session over the copy program\n"
      "open s /tmp/parulel_serve_test.clp\n"
      "assert s item 1\n"
      "assert s item 2\n"
      "run s\n"
      "query s seen\n"
      "stats s\n"
      "close s\n"
      "quit\n";
  {
    std::ofstream out("/tmp/parulel_serve_test.clp");
    out << kCopySource;
  }
  std::string first, second;
  for (std::string* target : {&first, &second}) {
    std::istringstream in(script);
    std::ostringstream out;
    EXPECT_EQ(serve(in, out), 0);
    *target = out.str();
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("ok run cycles=1 firings=2"), std::string::npos)
      << first;
  EXPECT_NE(first.find("ok query n=2"), std::string::npos) << first;
  EXPECT_NE(first.find("rebuilds=0"), std::string::npos) << first;
  EXPECT_NE(first.find("external_deltas=1"), std::string::npos) << first;
}

TEST(Serve, ErrorsAreReportedNotFatal) {
  const std::string script =
      "assert nosuch item 1\n"
      "open s /nonexistent/path.clp\n"
      "frobnicate s\n"
      "quit\n";
  std::istringstream in(script);
  std::ostringstream out;
  EXPECT_EQ(serve(in, out), 3);
  EXPECT_NE(out.str().find("err no session"), std::string::npos);
  EXPECT_NE(out.str().find("err cannot read"), std::string::npos);
  EXPECT_NE(out.str().find("err unknown command"), std::string::npos);
  EXPECT_NE(out.str().find("ok quit"), std::string::npos);
}

}  // namespace
}  // namespace parulel::service
