// Unit tests: partitioning and the simulated distributed engine.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "distrib/copy_constrain.hpp"
#include "distrib/dist_engine.hpp"
#include "engine/par_engine.hpp"
#include "support/error.hpp"
#include "workloads/workloads.hpp"

namespace parulel {
namespace {

constexpr const char* kTcProgram = R"(
(deftemplate edge (slot from) (slot to))
(deftemplate path (slot from) (slot to))
(defrule base (edge (from ?a) (to ?b)) (not (path (from ?a) (to ?b)))
  => (assert (path (from ?a) (to ?b))))
(defrule extend (path (from ?a) (to ?b)) (edge (from ?b) (to ?c))
  (not (path (from ?a) (to ?c)))
  => (assert (path (from ?a) (to ?c))))
(deffacts g
  (edge (from 1) (to 2)) (edge (from 2) (to 3)) (edge (from 3) (to 4)))
)";

TEST(PartitionScheme, ResolvesNames) {
  const Program p = parse_program(kTcProgram);
  PartitionScheme scheme(p, {{"path", "from"}});
  const TemplateId path_t = *p.schema.find(p.symbols->intern("path"));
  const TemplateId edge_t = *p.schema.find(p.symbols->intern("edge"));
  EXPECT_EQ(scheme.partition_slot(path_t), 0);
  EXPECT_TRUE(scheme.replicated(edge_t));
}

TEST(PartitionScheme, UnknownNamesThrow) {
  const Program p = parse_program(kTcProgram);
  EXPECT_THROW(PartitionScheme(p, {{"nope", "from"}}), ParseError);
  EXPECT_THROW(PartitionScheme(p, {{"path", "nope"}}), ParseError);
}

TEST(PartitionScheme, SiteOfIsStable) {
  const Program p = parse_program(kTcProgram);
  PartitionScheme scheme(p, {{"path", "from"}});
  const TemplateId path_t = *p.schema.find(p.symbols->intern("path"));
  const std::vector<Value> fact = {Value::integer(7), Value::integer(9)};
  const unsigned site = scheme.site_of(path_t, fact, 4);
  EXPECT_LT(site, 4u);
  EXPECT_EQ(scheme.site_of(path_t, fact, 4), site);
  // Single site: everything is site 0.
  EXPECT_EQ(scheme.site_of(path_t, fact, 1), 0u);
}

TEST(PartitionScheme, ValidAssignmentAccepted) {
  const Program p = parse_program(kTcProgram);
  PartitionScheme scheme(p, {{"path", "from"}});
  EXPECT_TRUE(scheme.validate(p).empty());
}

TEST(PartitionScheme, CrossJoinRejected) {
  // Partitioning edge by `from` breaks `extend`: path(?a,?b) join
  // edge(?b,?c) crosses partitions.
  const Program p = parse_program(kTcProgram);
  PartitionScheme scheme(p, {{"path", "from"}, {"edge", "from"}});
  const auto offending = scheme.validate(p);
  ASSERT_EQ(offending.size(), 1u);
  EXPECT_EQ(offending[0], "extend");
}

TEST(DistributedEngine, StrictModeRefusesBadSchemes) {
  const Program p = parse_program(kTcProgram);
  PartitionScheme scheme(p, {{"path", "from"}, {"edge", "from"}});
  DistConfig cfg;
  cfg.sites = 2;
  EXPECT_THROW(DistributedEngine(p, std::move(scheme), cfg), RuntimeError);
}

TEST(DistributedEngine, ComputesClosureAcrossSites) {
  const Program p = parse_program(kTcProgram);
  PartitionScheme scheme(p, {{"path", "from"}});
  DistConfig cfg;
  cfg.sites = 3;
  DistributedEngine dist(p, std::move(scheme), cfg);
  dist.assert_initial_facts();
  const DistStats stats = dist.run();
  EXPECT_TRUE(stats.run.quiescent);
  // Chain 1->2->3->4: 6 paths.
  std::size_t paths = 0;
  const TemplateId path_t = *p.schema.find(p.symbols->intern("path"));
  for (unsigned s = 0; s < dist.site_count(); ++s) {
    paths += dist.site_wm(s).extent(path_t).size();
  }
  EXPECT_EQ(paths, 6u);
}

TEST(DistributedEngine, ReplicatedFactsReachEverySite) {
  const Program p = parse_program(kTcProgram);
  PartitionScheme scheme(p, {{"path", "from"}});
  DistConfig cfg;
  cfg.sites = 4;
  DistributedEngine dist(p, std::move(scheme), cfg);
  dist.assert_initial_facts();
  const TemplateId edge_t = *p.schema.find(p.symbols->intern("edge"));
  for (unsigned s = 0; s < 4; ++s) {
    EXPECT_EQ(dist.site_wm(s).extent(edge_t).size(), 3u) << "site " << s;
  }
}

TEST(DistributedEngine, PartitionedFactsLandOnOneSite) {
  const Program p = parse_program(kTcProgram);
  PartitionScheme scheme(p, {{"path", "from"}});
  DistConfig cfg;
  cfg.sites = 4;
  DistributedEngine dist(p, std::move(scheme), cfg);
  dist.assert_initial_facts();
  dist.run();
  // Every path fact lives on exactly the site its `from` hashes to.
  const TemplateId path_t = *p.schema.find(p.symbols->intern("path"));
  PartitionScheme check(p, {{"path", "from"}});
  for (unsigned s = 0; s < 4; ++s) {
    for (FactId id : dist.site_wm(s).extent(path_t)) {
      const auto slots = dist.site_wm(s).view(id).copy_slots();
      EXPECT_EQ(check.site_of(path_t, slots, 4), s);
    }
  }
}

TEST(DistributedEngine, MessagesAreCounted) {
  const Program p = parse_program(kTcProgram);
  PartitionScheme scheme(p, {{"path", "from"}});
  DistConfig cfg;
  cfg.sites = 3;
  DistributedEngine dist(p, std::move(scheme), cfg);
  dist.assert_initial_facts();
  const DistStats stats = dist.run();
  // Replicated initial edges were delivered before run(); path asserts
  // are all site-local for this scheme (path.from = ?a everywhere), so
  // messages may be zero — but broadcasts of nothing and negative counts
  // are impossible.
  EXPECT_GE(stats.messages + stats.broadcasts, 0u);
  EXPECT_EQ(stats.per_site_firings.size(), 3u);
}

TEST(DistributedEngine, SingleSiteEqualsSharedMemory) {
  const Program p = parse_program(kTcProgram);
  PartitionScheme scheme(p, {{"path", "from"}});
  DistConfig cfg;
  cfg.sites = 1;
  DistributedEngine dist(p, std::move(scheme), cfg);
  dist.assert_initial_facts();
  const DistStats stats = dist.run();
  EXPECT_TRUE(stats.run.quiescent);
  EXPECT_EQ(stats.messages, 0u);
}

TEST(DistributedEngine, MetaRulesRunPerSite) {
  // The meta-stress waltz builds witnesses by rules under a defer-prune
  // meta-rule; distributed by cube, each site runs its own redaction
  // fixpoint — and must land on the same global result.
  const auto w = workloads::make_waltz(3, /*prebuilt_witnesses=*/false);
  const Program p = parse_program(w.source);

  EngineConfig cfg;
  cfg.threads = 2;
  cfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine shared(p, cfg);
  shared.assert_initial_facts();
  shared.run();

  PartitionScheme scheme(p, w.partition);
  DistConfig dc;
  dc.sites = 3;
  DistributedEngine dist(p, std::move(scheme), dc);
  dist.assert_initial_facts();
  const DistStats stats = dist.run();
  EXPECT_TRUE(stats.run.quiescent);
  EXPECT_GT(stats.run.total_redactions, 0u);
  EXPECT_EQ(dist.global_fingerprint(), shared.wm().content_fingerprint());
}

TEST(DistributedEngine, HaltPropagatesAcrossSites) {
  const Program p = parse_program(R"(
    (deftemplate task (slot id))
    (deftemplate poison (slot id))
    (defrule work (task (id ?i)) => (assert (poison (id ?i))))
    (defrule stop (poison (id ?i)) => (halt))
    (deffacts f (task (id 1)) (task (id 2)) (task (id 3))))");
  PartitionScheme scheme(p, {{"task", "id"}, {"poison", "id"}});
  DistConfig cfg;
  cfg.sites = 3;
  DistributedEngine dist(p, std::move(scheme), cfg);
  dist.assert_initial_facts();
  const DistStats stats = dist.run();
  EXPECT_TRUE(stats.run.halted);
}

TEST(DistributedEngine, SimulatedWallTimeIsPopulated) {
  const auto w = workloads::make_tc(16, 36, 5);
  const Program p = parse_program(w.source);
  PartitionScheme scheme(p, w.partition);
  DistConfig cfg;
  cfg.sites = 2;
  DistributedEngine dist(p, std::move(scheme), cfg);
  dist.assert_initial_facts();
  const DistStats stats = dist.run();
  EXPECT_GT(stats.sim_wall_ns, 0u);
  EXPECT_LE(stats.sim_wall_ns, stats.run.wall_ns * 2);  // sane bound
}

// ------------------------------------------- literal copy-and-constrain

TEST(CopyConstrain, UnionOfConstrainedCopiesEqualsFullRun) {
  // The original mechanism, demonstrated directly: each site runs ITS
  // constrained rule copies over the FULL fact set; the union of what
  // the sites derive equals one unconstrained run.
  const auto w = workloads::make_tc(24, 60, 31);
  const Program p = parse_program(w.source);
  PartitionScheme scheme(p, w.partition);

  // Reference: unconstrained run.
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine full(p, cfg);
  full.assert_initial_facts();
  full.run();
  const TemplateId path_t = *p.schema.find(p.symbols->intern("path"));

  auto path_set = [&](const WorkingMemory& wm) {
    std::set<std::pair<std::int64_t, std::int64_t>> out;
    for (FactId id : wm.extent(path_t)) {
      const FactView f = wm.view(id);
      out.emplace(f.slot(0).as_int(), f.slot(1).as_int());
    }
    return out;
  };
  const auto expected = path_set(full.wm());

  constexpr unsigned kSites = 3;
  std::set<std::pair<std::int64_t, std::int64_t>> unioned;
  std::vector<std::size_t> per_site;
  std::vector<Program> copies;  // keep alive: engines hold references
  copies.reserve(kSites);
  std::vector<std::unique_ptr<ParallelEngine>> engines;
  for (unsigned s = 0; s < kSites; ++s) {
    copies.push_back(constrain_copy(p, scheme, s, kSites));
    engines.push_back(std::make_unique<ParallelEngine>(copies.back(), cfg));
    engines.back()->assert_initial_facts();  // FULL fact set
    engines.back()->run();
    const auto site_paths = path_set(engines.back()->wm());
    per_site.push_back(site_paths.size());
    for (const auto& path : site_paths) unioned.insert(path);
  }

  EXPECT_EQ(unioned, expected);
  // The constraint really sliced the work: no site derived everything.
  for (std::size_t n : per_site) EXPECT_LT(n, expected.size());
}

TEST(CopyConstrain, SlicesAreDisjointForPartitionedTemplates) {
  const auto w = workloads::make_tc(16, 40, 17);
  const Program p = parse_program(w.source);
  PartitionScheme scheme(p, w.partition);
  const TemplateId path_t = *p.schema.find(p.symbols->intern("path"));

  EngineConfig cfg;
  cfg.threads = 1;
  cfg.matcher = MatcherKind::ParallelTreat;
  constexpr unsigned kSites = 4;
  std::map<std::pair<std::int64_t, std::int64_t>, int> owners;
  std::vector<Program> copies;
  copies.reserve(kSites);
  for (unsigned s = 0; s < kSites; ++s) {
    copies.push_back(constrain_copy(p, scheme, s, kSites));
    ParallelEngine engine(copies.back(), cfg);
    engine.assert_initial_facts();
    engine.run();
    for (FactId id : engine.wm().extent(path_t)) {
      const FactView f = engine.wm().view(id);
      owners[{f.slot(0).as_int(), f.slot(1).as_int()}]++;
    }
  }
  for (const auto& [path, count] : owners) {
    EXPECT_EQ(count, 1) << path.first << "->" << path.second;
  }
}

TEST(CopyConstrain, AgreesWithDistributedEngineSiteAssignment) {
  // hash-slice semantics match the routing engine's site_of.
  const auto w = workloads::make_tc(16, 40, 23);
  const Program p = parse_program(w.source);
  PartitionScheme scheme(p, w.partition);
  const TemplateId path_t = *p.schema.find(p.symbols->intern("path"));

  EngineConfig cfg;
  cfg.threads = 1;
  cfg.matcher = MatcherKind::ParallelTreat;
  const Program copy0 = constrain_copy(p, scheme, 0, 3);
  ParallelEngine engine(copy0, cfg);
  engine.assert_initial_facts();
  engine.run();
  for (FactId id : engine.wm().extent(path_t)) {
    const auto slots = engine.wm().view(id).copy_slots();
    EXPECT_EQ(scheme.site_of(path_t, slots, 3), 0u);
  }
}

// ------------------------------------------------ partitioning edge cases

TEST(PartitionScheme, EmptyMapReplicatesEveryTemplate) {
  // A scheme with no partitioned templates is legal: every site holds a
  // full copy and computes the whole closure locally.
  const Program p = parse_program(kTcProgram);
  PartitionScheme scheme(p, {});
  for (TemplateId t = 0; t < p.schema.size(); ++t) {
    EXPECT_TRUE(scheme.replicated(t));
    EXPECT_EQ(scheme.partition_slot(t), -1);
    EXPECT_EQ(scheme.site_of(t, {Value::integer(9), Value::integer(3)}, 5),
              0u);
  }
  EXPECT_TRUE(scheme.validate(p).empty());

  EngineConfig ecfg;
  ecfg.threads = 1;
  ecfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine shared(p, ecfg);
  shared.assert_initial_facts();
  shared.run();

  DistConfig cfg;
  cfg.sites = 3;
  DistributedEngine dist(p, PartitionScheme(p, {}), cfg);
  dist.assert_initial_facts();
  const DistStats stats = dist.run();
  EXPECT_TRUE(stats.run.quiescent);
  const TemplateId path_t = *p.schema.find(p.symbols->intern("path"));
  for (unsigned s = 0; s < 3; ++s) {
    EXPECT_EQ(dist.site_wm(s).extent(path_t).size(), 6u) << "site " << s;
  }
  EXPECT_EQ(dist.global_fingerprint(), shared.wm().content_fingerprint());
}

TEST(DistributedEngine, AllFactsHashingToOneSiteStillConverges) {
  // Pathological skew: every fact carries the same partition-slot value,
  // so one site owns the entire slice and the rest sit idle. The cluster
  // must still quiesce with the right answer — skew is a performance
  // hazard, not a correctness one.
  const Program p = parse_program(R"(
    (deftemplate item (slot bucket) (slot id))
    (deftemplate seen (slot bucket) (slot id))
    (defrule mark (item (bucket ?b) (id ?i))
      (not (seen (bucket ?b) (id ?i)))
      => (assert (seen (bucket ?b) (id ?i))))
    (deffacts f
      (item (bucket 7) (id 1)) (item (bucket 7) (id 2))
      (item (bucket 7) (id 3)) (item (bucket 7) (id 4))
      (item (bucket 7) (id 5)) (item (bucket 7) (id 6))))");
  PartitionScheme scheme(p, {{"item", "bucket"}, {"seen", "bucket"}});
  DistConfig cfg;
  cfg.sites = 4;
  DistributedEngine dist(p, std::move(scheme), cfg);
  dist.assert_initial_facts();
  const DistStats stats = dist.run();
  EXPECT_TRUE(stats.run.quiescent);

  const TemplateId item_t = *p.schema.find(p.symbols->intern("item"));
  const TemplateId seen_t = *p.schema.find(p.symbols->intern("seen"));
  unsigned owner_sites = 0;
  for (unsigned s = 0; s < 4; ++s) {
    const std::size_t items = dist.site_wm(s).extent(item_t).size();
    const std::size_t seen = dist.site_wm(s).extent(seen_t).size();
    if (items == 0) {
      EXPECT_EQ(seen, 0u) << "idle site " << s << " derived facts";
      EXPECT_EQ(stats.per_site_firings[s], 0u);
    } else {
      ++owner_sites;
      EXPECT_EQ(items, 6u);
      EXPECT_EQ(seen, 6u);
      EXPECT_EQ(stats.per_site_firings[s], 6u);
    }
  }
  EXPECT_EQ(owner_sites, 1u);
}

TEST(DistributedEngine, RetractionOfPartitionedFactsRoutesToOwner) {
  // Rules that retract partitioned facts: the retraction must land on
  // the owning site and negative CEs over the retracted template must
  // see the removal. Afterward no token survives anywhere.
  const Program p = parse_program(R"(
    (deftemplate token (slot key))
    (deftemplate used (slot key))
    (defrule consume ?t <- (token (key ?k))
      => (retract ?t) (assert (used (key ?k))))
    (deffacts f
      (token (key 1)) (token (key 2)) (token (key 3))
      (token (key 4)) (token (key 5))))");
  PartitionScheme scheme(p, {{"token", "key"}, {"used", "key"}});
  DistConfig cfg;
  cfg.sites = 3;
  DistributedEngine dist(p, std::move(scheme), cfg);
  dist.assert_initial_facts();
  const DistStats stats = dist.run();
  EXPECT_TRUE(stats.run.quiescent);

  const TemplateId token_t = *p.schema.find(p.symbols->intern("token"));
  const TemplateId used_t = *p.schema.find(p.symbols->intern("used"));
  std::size_t tokens = 0, used = 0;
  for (unsigned s = 0; s < 3; ++s) {
    tokens += dist.site_wm(s).extent(token_t).size();
    used += dist.site_wm(s).extent(used_t).size();
  }
  EXPECT_EQ(tokens, 0u);
  EXPECT_EQ(used, 5u);

  // Shared-memory reference agrees bit-for-bit.
  EngineConfig ecfg;
  ecfg.threads = 1;
  ecfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine shared(p, ecfg);
  shared.assert_initial_facts();
  shared.run();
  EXPECT_EQ(dist.global_fingerprint(), shared.wm().content_fingerprint());
}

TEST(CopyConstrain, ConstrainedCopiesHandleRetractingRules) {
  // The literal transformation with a retracting rule: each constrained
  // copy retracts only its own slice's tokens from the full fact set,
  // so the union of survivors across copies is exactly the full set of
  // `used` facts and (site_count - 1) stale copies of each token —
  // i.e. every copy retracted precisely the tokens its guard admits.
  const Program p = parse_program(R"(
    (deftemplate token (slot key))
    (deftemplate used (slot key))
    (defrule consume ?t <- (token (key ?k))
      => (retract ?t) (assert (used (key ?k))))
    (deffacts f
      (token (key 1)) (token (key 2)) (token (key 3))
      (token (key 4)) (token (key 5))))");
  PartitionScheme scheme(p, {{"token", "key"}, {"used", "key"}});
  const TemplateId token_t = *p.schema.find(p.symbols->intern("token"));
  const TemplateId used_t = *p.schema.find(p.symbols->intern("used"));

  EngineConfig cfg;
  cfg.threads = 1;
  cfg.matcher = MatcherKind::ParallelTreat;
  constexpr unsigned kSites = 3;
  std::set<std::int64_t> used_union;
  std::size_t surviving_tokens = 0;
  std::vector<Program> copies;
  copies.reserve(kSites);
  for (unsigned s = 0; s < kSites; ++s) {
    copies.push_back(constrain_copy(p, scheme, s, kSites));
    ParallelEngine engine(copies.back(), cfg);
    engine.assert_initial_facts();  // FULL fact set at every site
    engine.run();
    surviving_tokens += engine.wm().extent(token_t).size();
    for (FactId id : engine.wm().extent(used_t)) {
      used_union.insert(engine.wm().view(id).slot(0).as_int());
    }
  }
  EXPECT_EQ(used_union, (std::set<std::int64_t>{1, 2, 3, 4, 5}));
  // 5 tokens x 3 copies = 15 instances; each token retracted exactly
  // once (by its owner's copy) leaves 10 stale replicas.
  EXPECT_EQ(surviving_tokens, 5u * (kSites - 1));
}

TEST(DistributedEngine, TracedMessageCurveMatchesTotals) {
  const auto w = workloads::make_tc(12, 30, 23);
  const Program p = parse_program(w.source);
  PartitionScheme scheme(p, w.partition);
  DistConfig cfg;
  cfg.sites = 4;
  cfg.trace_cycles = true;
  DistributedEngine dist(p, std::move(scheme), cfg);
  dist.assert_initial_facts();
  const DistStats stats = dist.run();
  std::uint64_t sum = 0;
  for (auto m : stats.per_cycle_messages) sum += m;
  EXPECT_EQ(sum, stats.messages);
}

}  // namespace
}  // namespace parulel
