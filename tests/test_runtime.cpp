// Unit tests: thread pool and parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace parulel {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> out(100, 0);
  pool.parallel_for(0, 100, [&](std::size_t i, unsigned worker) {
    EXPECT_EQ(worker, 0u);
    out[i] = static_cast<int>(i);
  });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i, unsigned) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t, unsigned) { calls++; });
  pool.parallel_for(7, 3, [&](std::size_t, unsigned) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, WorkerIdsAreInRange) {
  ThreadPool pool(3);
  std::atomic<bool> bad{false};
  pool.parallel_for(0, 5000, [&](std::size_t, unsigned worker) {
    if (worker >= 3) bad = true;
  });
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPool, RunBatchExecutesEveryJob) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::function<void(unsigned)>> jobs;
  for (int i = 1; i <= 64; ++i) {
    jobs.push_back([&sum, i](unsigned) { sum += i; });
  }
  pool.run_batch(jobs);
  EXPECT_EQ(sum.load(), 64 * 65 / 2);
}

TEST(ThreadPool, RunBatchEmptyIsNoop) {
  ThreadPool pool(2);
  pool.run_batch({});  // must not hang
}

TEST(ThreadPool, SequentialBatchesReuseWorkers) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 100, [&](std::size_t, unsigned) { total++; });
  }
  EXPECT_EQ(total.load(), 5000);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  std::vector<std::function<void(unsigned)>> jobs;
  for (int i = 0; i < 16; ++i) {
    jobs.push_back([i](unsigned) {
      if (i == 7) throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(pool.run_batch(jobs), std::runtime_error);
  // Pool must remain usable after an exception.
  std::atomic<int> ok{0};
  pool.parallel_for(0, 10, [&](std::size_t, unsigned) { ok++; });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, LargeFanOutCompletes) {
  ThreadPool pool(ThreadPool::default_threads());
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(0, 200000,
                    [&](std::size_t i, unsigned) { sum += i; });
  EXPECT_EQ(sum.load(), 200000ull * 199999ull / 2);
}

TEST(ThreadPool, DefaultThreadsPositive) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  EXPECT_LE(ThreadPool::default_threads(), 64u);
}

}  // namespace
}  // namespace parulel
