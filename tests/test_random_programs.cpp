// Property tests: randomized programs against a brute-force oracle.
//
// For each seed: synthesize a random ruleset (joins, constants,
// wildcards, intra-pattern repeats, negation, type-safe guards), drive a
// random assert/retract stream through all three matchers, and after
// every batch compare each conflict set against a brute-force
// enumeration over working memory. This is the strongest correctness
// net in the suite: any divergence in alpha routing, join planning,
// seminaive derivation, negation maintenance, or deletion propagation
// shows up as a set mismatch.
//
// Separately: the PARULEL engine must be trace-identical across thread
// counts on arbitrary (even non-confluent, non-terminating) programs —
// determinism needs no confluence, just capped cycles.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>

#include "compile/vm.hpp"
#include "engine/par_engine.hpp"
#include "engine/seq_engine.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "match/parallel_treat.hpp"
#include "match/rete.hpp"
#include "match/treat.hpp"
#include "support/rng.hpp"

namespace parulel {
namespace {

// ------------------------------------------------- program synthesis

struct GeneratedProgram {
  std::string source;
  int n_templates;
  std::vector<int> arity;
};

/// `active_rhs` emits real actions (asserts of random facts, sometimes a
/// retract of the first CE) instead of the placeholder (halt), so engine
/// runs actually evolve working memory.
GeneratedProgram generate_program(Rng& rng, bool active_rhs = false) {
  GeneratedProgram out;
  out.n_templates = 2 + static_cast<int>(rng.below(2));  // 2..3
  std::ostringstream src;
  for (int t = 0; t < out.n_templates; ++t) {
    const int arity = 1 + static_cast<int>(rng.below(3));  // 1..3
    out.arity.push_back(arity);
    src << "(deftemplate t" << t;
    for (int s = 0; s < arity; ++s) src << " (slot s" << s << ")";
    src << ")\n";
  }

  auto random_const = [&]() -> std::string {
    if (rng.below(2) == 0) return std::to_string(rng.below(4));
    return std::string(1, static_cast<char>('a' + rng.below(3)));
  };

  const int n_rules = 3 + static_cast<int>(rng.below(4));  // 3..6
  for (int r = 0; r < n_rules; ++r) {
    src << "(defrule r" << r << "\n";
    const int n_pos = 1 + static_cast<int>(rng.below(3));  // 1..3
    const int n_neg = static_cast<int>(rng.below(3));      // 0..2
    const bool with_retract = active_rhs && rng.below(3) == 0;
    std::vector<std::string> used_vars;
    bool first_positive = true;

    auto emit_pattern = [&](bool negated) {
      if (!negated && first_positive) {
        first_positive = false;
        if (with_retract) src << "  ?target <- ";
        else src << "  ";
      } else {
        src << "  ";
      }
      const bool exists = negated && rng.below(2) == 0;
      const int t = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(out.n_templates)));
      src << (negated ? (exists ? "(exists " : "(not ") : "") << "(t" << t;
      for (int s = 0; s < out.arity[static_cast<std::size_t>(t)]; ++s) {
        src << " (s" << s << " ";
        const auto kind = rng.below(4);
        if (kind == 0) {
          src << random_const();
        } else if (kind == 1) {
          src << "?";  // wildcard
        } else if (kind == 2 && !used_vars.empty()) {
          // Reuse a variable: intra-pattern repeats and joins.
          src << "?" << used_vars[rng.below(used_vars.size())];
        } else {
          const std::string v = "v" + std::to_string(used_vars.size());
          if (!negated) used_vars.push_back(v);  // negated locals stay local
          src << "?" << v;
        }
        src << ")";
      }
      src << ")" << (negated ? ")" : "") << "\n";
    };

    for (int p = 0; p < n_pos; ++p) emit_pattern(false);
    // Type-safe guard: Eq/Ne never throw on mixed kinds.
    if (!used_vars.empty() && rng.below(2) == 0) {
      const std::string& a = used_vars[rng.below(used_vars.size())];
      if (rng.below(2) == 0 && used_vars.size() >= 2) {
        const std::string& b = used_vars[rng.below(used_vars.size())];
        src << "  (test (" << (rng.below(2) ? "==" : "!=") << " ?" << a
            << " ?" << b << "))\n";
      } else {
        src << "  (test (" << (rng.below(2) ? "==" : "!=") << " ?" << a
            << " " << random_const() << "))\n";
      }
    }
    for (int n = 0; n < n_neg; ++n) emit_pattern(true);
    src << "  =>\n";
    if (!active_rhs) {
      src << "  (halt))\n";
      continue;
    }
    // Active RHS: 1-2 asserts (vars or constants, no arithmetic so
    // symbol bindings stay type-safe), plus the optional retract.
    const int n_asserts = 1 + static_cast<int>(rng.below(2));
    for (int a = 0; a < n_asserts; ++a) {
      const int t = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(out.n_templates)));
      src << "  (assert (t" << t;
      for (int s = 0; s < out.arity[static_cast<std::size_t>(t)]; ++s) {
        src << " (s" << s << " ";
        if (!used_vars.empty() && rng.below(2) == 0) {
          src << "?" << used_vars[rng.below(used_vars.size())];
        } else {
          src << random_const();
        }
        src << ")";
      }
      src << "))\n";
    }
    if (with_retract) src << "  (retract ?target)\n";
    src << ")\n";
  }
  out.source = src.str();
  return out;
}

// ------------------------------------------------- brute-force oracle

using InstKey = std::pair<RuleId, std::vector<FactId>>;

void oracle_rule(const Program& program, const WorkingMemory& wm,
                 RuleId rule_id, std::set<InstKey>& out) {
  const CompiledRule& rule = program.rules[rule_id];
  std::vector<Value> env(static_cast<std::size_t>(rule.num_vars));
  std::vector<FactId> facts(rule.positives.size());

  auto pattern_matches = [&](const CompiledPattern& pat,
                             const FactView& fact, bool bind) {
    for (const auto& ct : pat.const_tests) {
      if (fact.slot(static_cast<std::size_t>(ct.slot)) != ct.value) {
        return false;
      }
    }
    for (const auto& ie : pat.intra_eqs) {
      if (fact.slot(static_cast<std::size_t>(ie.slot_a)) !=
          fact.slot(static_cast<std::size_t>(ie.slot_b))) {
        return false;
      }
    }
    for (const auto& eq : pat.join_eqs) {
      if (fact.slot(static_cast<std::size_t>(eq.slot)) !=
          env[static_cast<std::size_t>(eq.var)]) {
        return false;
      }
    }
    if (bind) {
      for (const auto& def : pat.defines) {
        env[static_cast<std::size_t>(def.var)] =
            fact.slot(static_cast<std::size_t>(def.slot));
      }
    }
    return true;
  };

  std::function<void(std::size_t)> recurse = [&](std::size_t p) {
    if (p == rule.positives.size()) {
      for (const auto& neg : rule.negatives) {
        bool found = false;
        for (FactId id : wm.extent(neg.tmpl)) {
          if (pattern_matches(neg, wm.view(id), /*bind=*/false)) {
            found = true;
            break;
          }
        }
        // (not ...) requires none; (exists ...) requires at least one.
        if (found != neg.exists) return;
      }
      out.emplace(rule_id, facts);
      return;
    }
    const CompiledPattern& pat = rule.positives[p];
    for (FactId id : wm.extent(pat.tmpl)) {
      // Save env: defines may overwrite bindings probed by later tries.
      std::vector<Value> saved = env;
      if (pattern_matches(pat, wm.view(id), /*bind=*/true)) {
        bool guards_ok = true;
        for (const auto& guard : rule.guards[p]) {
          if (!CompiledExpr::truthy(guard.eval(env))) {
            guards_ok = false;
            break;
          }
        }
        if (guards_ok) {
          facts[p] = id;
          recurse(p + 1);
        }
      }
      env = std::move(saved);
    }
  };
  recurse(0);
}

std::set<InstKey> oracle(const Program& program, const WorkingMemory& wm) {
  std::set<InstKey> out;
  for (RuleId r = 0; r < program.rules.size(); ++r) {
    oracle_rule(program, wm, r, out);
  }
  return out;
}

std::set<InstKey> matcher_set(const Matcher& matcher) {
  std::set<InstKey> out;
  matcher.conflict_set().for_each([&](const Instantiation& inst) {
    out.emplace(inst.rule, inst.facts);
  });
  return out;
}

// ------------------------------------------------------ the property

class RandomProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramTest, AllMatchersAgreeWithOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const GeneratedProgram gen = generate_program(rng);
  const Program program = parse_program(gen.source);

  WorkingMemory wm(program.schema);
  ThreadPool pool(3);
  ReteMatcher rete(program.rules, program.alphas, program.schema.size());
  TreatMatcher treat(program.rules, program.alphas, program.schema.size());
  ParallelTreatMatcher par(program.rules, program.alphas,
                           program.schema.size(), pool);
  CompiledMatcher compiled(program.rules, program.alphas,
                           program.schema.size());

  std::vector<FactId> alive;
  const int batches = 8;
  for (int batch = 0; batch < batches; ++batch) {
    const int ops = 1 + static_cast<int>(rng.below(12));
    for (int op = 0; op < ops; ++op) {
      if (!alive.empty() && rng.below(4) == 0) {
        const std::size_t pick = rng.below(alive.size());
        wm.retract(alive[pick]);
        alive[pick] = alive.back();
        alive.pop_back();
      } else {
        const auto t = static_cast<TemplateId>(rng.below(
            static_cast<std::uint64_t>(gen.n_templates)));
        std::vector<Value> slots;
        for (int s = 0; s < gen.arity[t]; ++s) {
          if (rng.below(2) == 0) {
            slots.push_back(Value::integer(
                static_cast<std::int64_t>(rng.below(4))));
          } else {
            slots.push_back(Value::symbol(program.symbols->intern(
                std::string(1, static_cast<char>('a' + rng.below(3))))));
          }
        }
        const FactId id = wm.assert_fact(t, std::move(slots));
        if (id != kInvalidFact) alive.push_back(id);
      }
    }

    const Delta delta = wm.drain_delta();
    rete.apply_delta(wm, delta);
    treat.apply_delta(wm, delta);
    par.apply_delta(wm, delta);
    compiled.apply_delta(wm, delta);

    const std::set<InstKey> expected = oracle(program, wm);
    EXPECT_EQ(matcher_set(rete), expected)
        << "rete diverged, batch " << batch << "\n" << gen.source;
    EXPECT_EQ(matcher_set(treat), expected)
        << "treat diverged, batch " << batch << "\n" << gen.source;
    EXPECT_EQ(matcher_set(par), expected)
        << "parallel diverged, batch " << batch << "\n" << gen.source;
    EXPECT_EQ(matcher_set(compiled), expected)
        << "compiled diverged, batch " << batch << "\n" << gen.source;

    // The compiled VM must also mirror the interpreter's derivation
    // ORDER, not just its set: identical InstIds are what make it a
    // drop-in under every conflict-resolution strategy.
    const std::vector<InstId> treat_ids = treat.conflict_set().alive_ids();
    const std::vector<InstId> vm_ids = compiled.conflict_set().alive_ids();
    ASSERT_EQ(treat_ids, vm_ids)
        << "compiled InstId order diverged, batch " << batch << "\n"
        << gen.source;
    for (InstId id : treat_ids) {
      const Instantiation& a = treat.conflict_set().get(id);
      const Instantiation& b = compiled.conflict_set().get(id);
      ASSERT_EQ(a.rule, b.rule) << "inst " << id;
      ASSERT_EQ(a.facts, b.facts) << "inst " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest, ::testing::Range(0, 60));

// ------------------------------------- engine determinism, any program

class RandomEngineTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomEngineTest, ParallelEngineTraceIdenticalAcrossThreads) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  GeneratedProgram gen = generate_program(rng, /*active_rhs=*/true);
  std::string source = gen.source;
  // Append a deffacts block with a random initial population.
  std::ostringstream facts;
  facts << "(deffacts init\n";
  for (int i = 0; i < 12; ++i) {
    const auto t = rng.below(static_cast<std::uint64_t>(gen.n_templates));
    facts << "  (t" << t;
    for (int s = 0; s < gen.arity[t]; ++s) {
      facts << " (s" << s << " " << rng.below(4) << ")";
    }
    facts << ")\n";
  }
  facts << ")\n";
  source += facts.str();
  const Program program = parse_program(source);

  auto run = [&](unsigned threads) {
    EngineConfig cfg;
    cfg.threads = threads;
    cfg.matcher = MatcherKind::ParallelTreat;
    cfg.trace_cycles = true;
    cfg.max_cycles = 50;
    ParallelEngine engine(program, cfg);
    engine.assert_initial_facts();
    const RunStats stats = engine.run();
    return std::make_pair(stats, engine.wm().content_fingerprint());
  };

  const auto [s1, fp1] = run(1);
  const auto [s4, fp4] = run(4);
  EXPECT_EQ(fp1, fp4);
  EXPECT_EQ(s1.cycles, s4.cycles);
  EXPECT_EQ(s1.total_firings, s4.total_firings);
  ASSERT_EQ(s1.per_cycle.size(), s4.per_cycle.size());
  for (std::size_t i = 0; i < s1.per_cycle.size(); ++i) {
    EXPECT_EQ(s1.per_cycle[i].fired, s4.per_cycle[i].fired) << i;
    EXPECT_EQ(s1.per_cycle[i].conflict_set_size,
              s4.per_cycle[i].conflict_set_size)
        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEngineTest, ::testing::Range(0, 25));

// ----------------------- compiled vs interpreted differential sweep
//
// The compiled matcher's primary correctness gate: every generated
// program runs to completion under the interpreted TREAT oracle and
// under the bytecode VM, and the full observable behaviour must match —
// final working-memory fingerprint, cycle count, total firings, and the
// per-cycle conflict-set sizes.

class CompiledDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(CompiledDifferentialTest, CompiledMatchesInterpreterEndToEnd) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15485863 + 11);
  GeneratedProgram gen = generate_program(rng, /*active_rhs=*/true);
  std::string source = gen.source;
  std::ostringstream facts;
  facts << "(deffacts init\n";
  for (int i = 0; i < 12; ++i) {
    const auto t = rng.below(static_cast<std::uint64_t>(gen.n_templates));
    facts << "  (t" << t;
    for (int s = 0; s < gen.arity[t]; ++s) {
      facts << " (s" << s << " " << rng.below(4) << ")";
    }
    facts << ")\n";
  }
  facts << ")\n";
  source += facts.str();
  const Program program = parse_program(source);

  auto run = [&](MatcherKind kind) {
    EngineConfig cfg;
    cfg.threads = 1;
    cfg.matcher = kind;
    cfg.trace_cycles = true;
    cfg.max_cycles = 50;
    ParallelEngine engine(program, cfg);
    engine.assert_initial_facts();
    const RunStats stats = engine.run();
    return std::make_pair(stats, engine.wm().content_fingerprint());
  };

  const auto [si, fpi] = run(MatcherKind::Treat);
  const auto [sc, fpc] = run(MatcherKind::Compiled);
  EXPECT_EQ(fpi, fpc) << "fingerprint diverged\n" << source;

  // Rete rides the sequential engine (the parallel engine rejects it);
  // treat under the same engine is the apples-to-apples oracle.
  auto run_seq = [&](MatcherKind kind) {
    EngineConfig cfg;
    cfg.matcher = kind;
    cfg.max_cycles = 500;
    SequentialEngine engine(program, cfg);
    engine.assert_initial_facts();
    const RunStats stats = engine.run();
    return std::make_pair(stats.total_firings,
                          engine.wm().content_fingerprint());
  };
  const auto [seq_treat_fired, seq_treat_fp] = run_seq(MatcherKind::Treat);
  const auto [seq_rete_fired, seq_rete_fp] = run_seq(MatcherKind::Rete);
  EXPECT_EQ(seq_treat_fp, seq_rete_fp)
      << "rete fingerprint diverged\n" << source;
  EXPECT_EQ(seq_treat_fired, seq_rete_fired) << source;
  EXPECT_EQ(si.cycles, sc.cycles) << source;
  EXPECT_EQ(si.total_firings, sc.total_firings) << source;
  EXPECT_EQ(si.peak_conflict_set, sc.peak_conflict_set) << source;
  ASSERT_EQ(si.per_cycle.size(), sc.per_cycle.size());
  for (std::size_t i = 0; i < si.per_cycle.size(); ++i) {
    EXPECT_EQ(si.per_cycle[i].conflict_set_size,
              sc.per_cycle[i].conflict_set_size)
        << "cycle " << i << "\n" << source;
    EXPECT_EQ(si.per_cycle[i].fired, sc.per_cycle[i].fired)
        << "cycle " << i << "\n" << source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledDifferentialTest,
                         ::testing::Range(0, 200));

// ---------------------------- printer round-trip, randomized programs

bool exprs_equal(const ExprAst& a, const ExprAst& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprAst::Kind::Const: return a.constant == b.constant;
    case ExprAst::Kind::Var: return a.var == b.var;
    case ExprAst::Kind::Call:
      if (a.op != b.op || a.args.size() != b.args.size()) return false;
      for (std::size_t i = 0; i < a.args.size(); ++i) {
        if (!exprs_equal(a.args[i], b.args[i])) return false;
      }
      return true;
  }
  return false;
}

bool patterns_equal(const PatternCEAst& a, const PatternCEAst& b) {
  if (a.tmpl != b.tmpl || a.negated != b.negated || a.exists != b.exists ||
      a.fact_var != b.fact_var || a.slots.size() != b.slots.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.slots.size(); ++i) {
    const SlotPatternAst& x = a.slots[i];
    const SlotPatternAst& y = b.slots[i];
    if (x.slot != y.slot || x.kind != y.kind) return false;
    if (x.kind == SlotPatternAst::Kind::Const && x.constant != y.constant) {
      return false;
    }
    if (x.kind == SlotPatternAst::Kind::Var && x.var != y.var) return false;
  }
  return true;
}

bool ces_equal(const CEAst& a, const CEAst& b) {
  if (a.index() != b.index()) return false;
  if (const auto* ta = std::get_if<TestCEAst>(&a)) {
    return exprs_equal(ta->expr, std::get<TestCEAst>(b).expr);
  }
  return patterns_equal(std::get<PatternCEAst>(a),
                        std::get<PatternCEAst>(b));
}

bool actions_equal(const ActionAst& a, const ActionAst& b) {
  if (a.kind != b.kind || a.tmpl != b.tmpl || a.fact_var != b.fact_var ||
      a.bind_var != b.bind_var ||
      a.slot_exprs.size() != b.slot_exprs.size() ||
      a.args.size() != b.args.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.slot_exprs.size(); ++i) {
    if (a.slot_exprs[i].first != b.slot_exprs[i].first ||
        !exprs_equal(a.slot_exprs[i].second, b.slot_exprs[i].second)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.args.size(); ++i) {
    if (!exprs_equal(a.args[i], b.args[i])) return false;
  }
  return true;
}

/// Structural equality over whole ASTs, line numbers ignored.
bool asts_equal(const ProgramAst& a, const ProgramAst& b) {
  if (a.templates.size() != b.templates.size() ||
      a.rules.size() != b.rules.size() || a.facts.size() != b.facts.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.templates.size(); ++i) {
    if (a.templates[i].name != b.templates[i].name ||
        a.templates[i].slots != b.templates[i].slots) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.rules.size(); ++i) {
    const RuleAst& x = a.rules[i];
    const RuleAst& y = b.rules[i];
    if (x.name != y.name || x.salience != y.salience ||
        x.is_meta != y.is_meta || x.lhs.size() != y.lhs.size() ||
        x.rhs.size() != y.rhs.size()) {
      return false;
    }
    for (std::size_t j = 0; j < x.lhs.size(); ++j) {
      if (!ces_equal(x.lhs[j], y.lhs[j])) return false;
    }
    for (std::size_t j = 0; j < x.rhs.size(); ++j) {
      if (!actions_equal(x.rhs[j], y.rhs[j])) return false;
    }
  }
  for (std::size_t i = 0; i < a.facts.size(); ++i) {
    if (a.facts[i].name != b.facts[i].name ||
        a.facts[i].facts.size() != b.facts[i].facts.size()) {
      return false;
    }
    for (std::size_t j = 0; j < a.facts[i].facts.size(); ++j) {
      if (!patterns_equal(a.facts[i].facts[j], b.facts[i].facts[j])) {
        return false;
      }
    }
  }
  return true;
}

/// parse -> print -> parse must reproduce the AST, and a second print
/// must reproduce the text (the printer is a fixpoint of its own
/// output).
void expect_round_trip(const std::string& source) {
  SymbolTable symbols;
  const ProgramAst first = parse_ast(source, symbols);
  const std::string printed = print_ast(first, symbols);
  const ProgramAst second = parse_ast(printed, symbols);
  EXPECT_TRUE(asts_equal(first, second))
      << "round-trip changed the AST\n--- original:\n"
      << source << "--- printed:\n" << printed;
  EXPECT_EQ(printed, print_ast(second, symbols))
      << "printer is not idempotent on its own output";
}

class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, PrintedProgramReparsesToSameAst) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6271 + 31);
  const bool active = GetParam() % 2 == 0;
  expect_round_trip(generate_program(rng, active).source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest, ::testing::Range(0, 40));

TEST(RoundTrip, CoversEveryAstNodeKind) {
  // Salience, not/exists, fact vars, wildcards, floats, strings,
  // modify/bind/halt/printout, meta rules with redact — one program
  // touching every printable node.
  expect_round_trip(R"((deftemplate point (slot x) (slot y))
(deftemplate label (slot text) (slot weight))
(defrule tag
  (declare (salience 5))
  ?p <- (point (x ?x) (y ?))
  (not (label (text done) (weight ?x)))
  (exists (point (x 0) (y ?x)))
  (test (> ?x 1.5))
  =>
  (bind ?w (+ ?x 0.25))
  (assert (label (text "two words") (weight ?w)))
  (modify ?p (x (- ?x 1)))
  (printout tagged ?x)
  (halt))
(defmetarule dedup
  (inst-tag (id ?a) (x ?x1))
  (inst-tag (id ?b) (x ?x2))
  (test (and (== ?x1 ?x2) (< ?a ?b)))
  =>
  (redact ?b))
(deffacts seed
  (point (x 2.75) (y 1))
  (label (text "a b") (weight -3)))
)");
}

}  // namespace
}  // namespace parulel
