// Unit tests: symbol table, values, RNG, stats.
#include <gtest/gtest.h>

#include <thread>
#include <unordered_set>
#include <vector>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/symbol_table.hpp"
#include "support/value.hpp"

namespace parulel {
namespace {

TEST(SymbolTable, EmptyStringIsSymbolZero) {
  SymbolTable t;
  EXPECT_EQ(t.intern(""), 0u);
  EXPECT_EQ(t.name(0), "");
}

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable t;
  const Symbol a = t.intern("alpha");
  const Symbol b = t.intern("alpha");
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.name(a), "alpha");
}

TEST(SymbolTable, DistinctStringsGetDistinctSymbols) {
  SymbolTable t;
  EXPECT_NE(t.intern("x"), t.intern("y"));
  EXPECT_EQ(t.size(), 3u);  // "", x, y
}

TEST(SymbolTable, StableViewsAcrossGrowth) {
  SymbolTable t;
  const Symbol a = t.intern("first");
  const std::string_view view = t.name(a);
  for (int i = 0; i < 1000; ++i) t.intern("sym" + std::to_string(i));
  EXPECT_EQ(view, "first");
  EXPECT_EQ(t.name(a), "first");
}

TEST(SymbolTable, ConcurrentInternIsSafe) {
  SymbolTable t;
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&t] {
      for (int i = 0; i < 500; ++i) t.intern("shared" + std::to_string(i));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.size(), 501u);  // "" + 500 shared
}

TEST(Value, KindsAndAccessors) {
  const Value i = Value::integer(-7);
  const Value f = Value::real(2.5);
  const Value s = Value::symbol(42);
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(f.is_float());
  EXPECT_TRUE(s.is_sym());
  EXPECT_EQ(i.as_int(), -7);
  EXPECT_EQ(f.as_float(), 2.5);
  EXPECT_EQ(s.as_sym(), 42u);
}

TEST(Value, EqualityIsStructural) {
  EXPECT_EQ(Value::integer(3), Value::integer(3));
  EXPECT_NE(Value::integer(3), Value::real(3.0));  // kinds differ
  EXPECT_NE(Value::integer(3), Value::symbol(3));
  EXPECT_EQ(Value::symbol(5), Value::symbol(5));
}

TEST(Value, NumericPromotion) {
  EXPECT_DOUBLE_EQ(Value::integer(4).numeric(), 4.0);
  EXPECT_DOUBLE_EQ(Value::real(0.25).numeric(), 0.25);
}

TEST(Value, OrderingIsTotalWithinKind) {
  EXPECT_LT(Value::integer(1), Value::integer(2));
  EXPECT_LT(Value::real(1.0), Value::real(1.5));
  EXPECT_LT(Value::symbol(1), Value::symbol(2));
}

TEST(Value, HashDistinguishesKinds) {
  // Same payload bits, different kinds: hashes should differ.
  EXPECT_NE(Value::integer(7).hash(), Value::symbol(7).hash());
}

TEST(Value, HashIsConsistentWithEquality) {
  const Value a = Value::integer(123456789);
  const Value b = Value::integer(123456789);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Value, ToStringRendersAllKinds) {
  SymbolTable t;
  const Symbol hello = t.intern("hello");
  EXPECT_EQ(Value::integer(-3).to_string(t), "-3");
  EXPECT_EQ(Value::symbol(hello).to_string(t), "hello");
  EXPECT_EQ(Value::real(1.5).to_string(t), "1.5");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(10), 10u);
}

TEST(Rng, BetweenIsInclusive) {
  Rng r(7);
  std::unordered_set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RunStats, AbsorbAccumulates) {
  RunStats stats;
  CycleStats c1;
  c1.fired = 3;
  c1.asserts = 5;
  c1.conflict_set_size = 10;
  c1.match_ns = 100;
  CycleStats c2;
  c2.fired = 2;
  c2.retracts = 1;
  c2.conflict_set_size = 4;
  c2.match_ns = 50;
  stats.absorb(c1);
  stats.absorb(c2);
  EXPECT_EQ(stats.cycles, 2u);
  EXPECT_EQ(stats.total_firings, 5u);
  EXPECT_EQ(stats.total_asserts, 5u);
  EXPECT_EQ(stats.total_retracts, 1u);
  EXPECT_EQ(stats.peak_conflict_set, 10u);
  EXPECT_EQ(stats.match_ns, 150u);
}

TEST(RunStats, SummaryMentionsKeyCounters) {
  RunStats stats;
  stats.cycles = 7;
  stats.quiescent = true;
  const std::string s = stats.summary();
  EXPECT_NE(s.find("cycles=7"), std::string::npos);
  EXPECT_NE(s.find("quiescent"), std::string::npos);
}

}  // namespace
}  // namespace parulel
