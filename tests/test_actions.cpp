// Unit tests: RHS action execution, direct vs buffered.
//
// The parallel engine's core safety property in miniature: for one
// instantiation, fire_direct(wm) and fire_buffered(snapshot) +
// apply_pending(wm) must leave working memory in identical states.
#include <gtest/gtest.h>

#include <sstream>

#include "engine/actions.hpp"
#include "match/treat.hpp"

namespace parulel {
namespace {

/// Fixture: parse, assert deffacts, match once, expose instantiations.
class ActionTest : public ::testing::Test {
 protected:
  void load(const std::string& source) {
    program_ = parse_program(source);
    wm_ = std::make_unique<WorkingMemory>(program_.schema);
    matcher_ = std::make_unique<TreatMatcher>(
        program_.rules, program_.alphas, program_.schema.size());
    for (const auto& f : program_.initial_facts) {
      wm_->assert_fact(f.tmpl, f.slots);
    }
    matcher_->apply_delta(*wm_, wm_->drain_delta());
  }

  Instantiation first_inst() {
    const auto ids = matcher_->conflict_set().alive_ids();
    EXPECT_FALSE(ids.empty());
    return matcher_->conflict_set().get(ids.front());
  }

  Program program_;
  std::unique_ptr<WorkingMemory> wm_;
  std::unique_ptr<TreatMatcher> matcher_;
};

TEST_F(ActionTest, DirectAssertEvaluatesExpressions) {
  load(R"(
    (deftemplate n (slot v))
    (deftemplate out (slot v) (slot sq))
    (defrule r (n (v ?x)) => (assert (out (v ?x) (sq (* ?x ?x)))))
    (deffacts f (n (v 7))))");
  const DirectFireResult res =
      fire_direct(program_, first_inst(), *wm_, nullptr);
  EXPECT_EQ(res.asserts, 1u);
  const TemplateId out_t = *program_.schema.find(program_.symbols->intern("out"));
  ASSERT_EQ(wm_->extent(out_t).size(), 1u);
  EXPECT_EQ(wm_->view(wm_->extent(out_t)[0]).slot(1), Value::integer(49));
}

TEST_F(ActionTest, DirectRetractTargetsBoundFact) {
  load(R"(
    (deftemplate n (slot v))
    (defrule r ?f <- (n (v ?x)) (test (== ?x 2)) => (retract ?f))
    (deffacts f (n (v 1)) (n (v 2))))");
  fire_direct(program_, first_inst(), *wm_, nullptr);
  EXPECT_EQ(wm_->alive_count(), 1u);
  const TemplateId n_t = *program_.schema.find(program_.symbols->intern("n"));
  EXPECT_TRUE(wm_->find(n_t, {Value::integer(1)}).has_value());
  EXPECT_FALSE(wm_->find(n_t, {Value::integer(2)}).has_value());
}

TEST_F(ActionTest, BindFeedsLaterActions) {
  load(R"(
    (deftemplate n (slot v))
    (deftemplate out (slot v))
    (defrule r (n (v ?x))
      => (bind ?y (+ ?x 10)) (bind ?z (* ?y 2)) (assert (out (v ?z))))
    (deffacts f (n (v 1))))");
  fire_direct(program_, first_inst(), *wm_, nullptr);
  const TemplateId out_t = *program_.schema.find(program_.symbols->intern("out"));
  ASSERT_EQ(wm_->extent(out_t).size(), 1u);
  EXPECT_EQ(wm_->view(wm_->extent(out_t)[0]).slot(0), Value::integer(22));
}

TEST_F(ActionTest, HaltCutsRemainingActions) {
  load(R"(
    (deftemplate n (slot v))
    (deftemplate out (slot v))
    (defrule r (n (v ?x)) => (halt) (assert (out (v ?x))))
    (deffacts f (n (v 1))))");
  const DirectFireResult res =
      fire_direct(program_, first_inst(), *wm_, nullptr);
  EXPECT_TRUE(res.halt);
  EXPECT_EQ(res.asserts, 0u);
}

TEST_F(ActionTest, PrintoutWritesToStream) {
  load(R"(
    (deftemplate n (slot v))
    (defrule r (n (v ?x)) => (printout "v is " ?x " squared " (* ?x ?x)))
    (deffacts f (n (v 3))))");
  std::ostringstream out;
  fire_direct(program_, first_inst(), *wm_, &out);
  EXPECT_EQ(out.str(), "v is 3 squared 9\n");
}

TEST_F(ActionTest, ModifyPreservesUntouchedSlots) {
  load(R"(
    (deftemplate rec (slot a) (slot b) (slot c))
    (defrule r ?f <- (rec (a ?x) (b 0) (c ?c)) => (modify ?f (b (+ ?x 1))))
    (deffacts f (rec (a 5) (b 0) (c 9))))");
  fire_direct(program_, first_inst(), *wm_, nullptr);
  const TemplateId rec_t = *program_.schema.find(program_.symbols->intern("rec"));
  ASSERT_EQ(wm_->extent(rec_t).size(), 1u);
  const FactView f = wm_->view(wm_->extent(rec_t)[0]);
  EXPECT_EQ(f.slot(0), Value::integer(5));
  EXPECT_EQ(f.slot(1), Value::integer(6));
  EXPECT_EQ(f.slot(2), Value::integer(9));
}

TEST_F(ActionTest, BufferedMatchesDirectOutcome) {
  const char* source = R"(
    (deftemplate n (slot v))
    (deftemplate out (slot v))
    (defrule r ?f <- (n (v ?x))
      => (retract ?f)
         (assert (out (v (* ?x 3))))
         (assert (n (v (+ ?x 1)))))
    (deffacts f (n (v 4))))";
  // Direct path.
  load(source);
  fire_direct(program_, first_inst(), *wm_, nullptr);
  const std::uint64_t direct_fp = wm_->content_fingerprint();

  // Buffered path against a snapshot, then merged.
  load(source);
  PendingOps pending;
  fire_buffered(program_, first_inst(), *wm_, pending);
  // Buffering must not touch working memory.
  EXPECT_EQ(wm_->alive_count(), 1u);
  MergeResult merged;
  apply_pending(pending, *wm_, nullptr, merged);
  EXPECT_EQ(merged.asserts, 2u);
  EXPECT_EQ(merged.retracts, 1u);
  EXPECT_EQ(wm_->content_fingerprint(), direct_fp);
}

TEST_F(ActionTest, BufferedPrintoutIsDeferred) {
  load(R"(
    (deftemplate n (slot v))
    (defrule r (n (v ?x)) => (printout "hello " ?x))
    (deffacts f (n (v 1))))");
  PendingOps pending;
  fire_buffered(program_, first_inst(), *wm_, pending);
  EXPECT_EQ(pending.printout, "hello 1\n");
  std::ostringstream out;
  MergeResult merged;
  apply_pending(pending, *wm_, &out, merged);
  EXPECT_EQ(out.str(), "hello 1\n");
}

TEST_F(ActionTest, BufferedModifyLosingRaceSkipsPairedAssert) {
  load(R"(
    (deftemplate n (slot v))
    (defrule r ?f <- (n (v 0)) => (modify ?f (v 1)))
    (deffacts f (n (v 0))))");
  const Instantiation inst = first_inst();
  PendingOps p1, p2;
  fire_buffered(program_, inst, *wm_, p1);
  fire_buffered(program_, inst, *wm_, p2);  // same target: a race
  MergeResult merged;
  apply_pending(p1, *wm_, nullptr, merged);
  apply_pending(p2, *wm_, nullptr, merged);
  EXPECT_EQ(merged.write_conflicts, 1u);
  EXPECT_EQ(wm_->alive_count(), 1u);  // no duplicate (v 1)
}

TEST_F(ActionTest, DuplicateAssertIsAbsorbedAndCounted) {
  load(R"(
    (deftemplate n (slot v))
    (deftemplate out (slot v))
    (defrule r (n (v ?x)) => (assert (out (v 1))) (assert (out (v 1))))
    (deffacts f (n (v 7))))");
  const DirectFireResult res =
      fire_direct(program_, first_inst(), *wm_, nullptr);
  EXPECT_EQ(res.asserts, 1u);
  EXPECT_EQ(res.duplicate_asserts, 1u);
}

}  // namespace
}  // namespace parulel
