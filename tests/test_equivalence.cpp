// Cross-engine property tests.
//
// The load-bearing invariants of the whole system:
//   1. For confluent programs (saturation without ordering races), the
//      sequential OPS5 engine and the PARULEL engine reach the same
//      final working memory — and so does every matcher and thread count.
//   2. The PARULEL engine is bit-deterministic across thread counts:
//      same cycle trace, same firing counts, same final fingerprint.
//   3. The distributed engine agrees with the shared-memory engine on
//      partitionable programs.
#include <gtest/gtest.h>

#include <memory>

#include "distrib/dist_engine.hpp"
#include "engine/par_engine.hpp"
#include "engine/seq_engine.hpp"
#include "workloads/workloads.hpp"

namespace parulel {
namespace {

std::uint64_t run_sequential(const Program& p, MatcherKind matcher,
                             Strategy strategy, RunStats* stats_out) {
  EngineConfig cfg;
  cfg.matcher = matcher;
  cfg.strategy = strategy;
  SequentialEngine engine(p, cfg);
  engine.assert_initial_facts();
  RunStats stats = engine.run();
  if (stats_out) *stats_out = stats;
  return engine.wm().content_fingerprint();
}

std::uint64_t run_parallel(const Program& p, unsigned threads,
                           RunStats* stats_out) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.matcher = MatcherKind::ParallelTreat;
  cfg.trace_cycles = true;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  RunStats stats = engine.run();
  if (stats_out) *stats_out = stats;
  return engine.wm().content_fingerprint();
}

// ------------------------------------------------ confluent workloads

struct ConfluentCase {
  const char* label;
  workloads::Workload workload;
};

class ConfluentTest : public ::testing::TestWithParam<int> {
 protected:
  static workloads::Workload pick(int which) {
    switch (which) {
      case 0: return workloads::make_tc(16, 40, 7);
      case 1: return workloads::make_sieve(60, /*dedup_strikes=*/false);
      case 2: return workloads::make_sieve(60, /*dedup_strikes=*/true);
      case 3: return workloads::make_waltz(2);
      case 4: return workloads::make_synth(3, 30, 8, 11);
      case 5: return workloads::make_life(5, 3, 9);
      case 6: return workloads::make_routing(16, 40, 13, false);
      case 7: return workloads::make_routing(16, 40, 13, true);
      case 8: return workloads::make_waltz(2, /*prebuilt_witnesses=*/false);
      default: return workloads::make_tc(8, 12, 3);
    }
  }
};

TEST_P(ConfluentTest, SequentialEnginesAgreeAcrossMatchersAndStrategies) {
  const auto w = pick(GetParam());
  const Program p = parse_program(w.source);
  const std::uint64_t rete_lex =
      run_sequential(p, MatcherKind::Rete, Strategy::Lex, nullptr);
  const std::uint64_t treat_lex =
      run_sequential(p, MatcherKind::Treat, Strategy::Lex, nullptr);
  const std::uint64_t rete_first =
      run_sequential(p, MatcherKind::Rete, Strategy::First, nullptr);
  const std::uint64_t rete_mea =
      run_sequential(p, MatcherKind::Rete, Strategy::Mea, nullptr);
  EXPECT_EQ(rete_lex, treat_lex) << w.name;
  EXPECT_EQ(rete_lex, rete_first) << w.name;
  EXPECT_EQ(rete_lex, rete_mea) << w.name;
}

TEST_P(ConfluentTest, ParallelMatchesSequential) {
  const auto w = pick(GetParam());
  const Program p = parse_program(w.source);
  const std::uint64_t seq =
      run_sequential(p, MatcherKind::Rete, Strategy::Lex, nullptr);
  const std::uint64_t par = run_parallel(p, 4, nullptr);
  EXPECT_EQ(seq, par) << w.name;
}

TEST_P(ConfluentTest, ParallelDeterministicAcrossThreadCounts) {
  const auto w = pick(GetParam());
  const Program p = parse_program(w.source);
  RunStats s1, s2, s8;
  const std::uint64_t fp1 = run_parallel(p, 1, &s1);
  const std::uint64_t fp2 = run_parallel(p, 2, &s2);
  const std::uint64_t fp8 = run_parallel(p, 8, &s8);
  EXPECT_EQ(fp1, fp2) << w.name;
  EXPECT_EQ(fp1, fp8) << w.name;
  EXPECT_EQ(s1.cycles, s8.cycles) << w.name;
  EXPECT_EQ(s1.total_firings, s8.total_firings) << w.name;
  EXPECT_EQ(s1.total_redactions, s8.total_redactions) << w.name;
  // Full per-cycle trace identical.
  ASSERT_EQ(s1.per_cycle.size(), s8.per_cycle.size());
  for (std::size_t i = 0; i < s1.per_cycle.size(); ++i) {
    EXPECT_EQ(s1.per_cycle[i].fired, s8.per_cycle[i].fired) << w.name << i;
    EXPECT_EQ(s1.per_cycle[i].asserts, s8.per_cycle[i].asserts)
        << w.name << i;
    EXPECT_EQ(s1.per_cycle[i].retracts, s8.per_cycle[i].retracts)
        << w.name << i;
  }
}

std::string confluent_case_name(
    const ::testing::TestParamInfo<int>& info) {
  static const char* const names[] = {
      "tc",   "sieve",   "sieve_meta",   "waltz", "synth",
      "life", "routing", "routing_meta", "waltz_metastress"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Workloads, ConfluentTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8),
                         confluent_case_name);

// ---------------------------------------------------------- distributed

TEST(Distributed, AgreesWithSharedMemoryOnTc) {
  const auto w = workloads::make_tc(20, 50, 13);
  const Program p = parse_program(w.source);
  const std::uint64_t shared = run_parallel(p, 4, nullptr);

  PartitionScheme scheme(p, w.partition);
  DistConfig cfg;
  cfg.sites = 4;
  DistributedEngine dist(p, std::move(scheme), cfg);
  dist.assert_initial_facts();
  dist.run();
  EXPECT_EQ(dist.global_fingerprint(), shared);
}

TEST(Distributed, AgreesWithSharedMemoryOnWaltz) {
  const auto w = workloads::make_waltz(3);
  const Program p = parse_program(w.source);
  const std::uint64_t shared = run_parallel(p, 4, nullptr);

  PartitionScheme scheme(p, w.partition);
  DistConfig cfg;
  cfg.sites = 3;
  DistributedEngine dist(p, std::move(scheme), cfg);
  dist.assert_initial_facts();
  dist.run();
  EXPECT_EQ(dist.global_fingerprint(), shared);
}

TEST(Distributed, SiteCountDoesNotChangeResult) {
  const auto w = workloads::make_tc(16, 36, 5);
  const Program p = parse_program(w.source);
  std::uint64_t first = 0;
  for (unsigned sites : {1u, 2u, 4u, 8u}) {
    PartitionScheme scheme(p, w.partition);
    DistConfig cfg;
    cfg.sites = sites;
    DistributedEngine dist(p, std::move(scheme), cfg);
    dist.assert_initial_facts();
    dist.run();
    const std::uint64_t fp = dist.global_fingerprint();
    if (sites == 1u) {
      first = fp;
    } else {
      EXPECT_EQ(fp, first) << sites << " sites";
    }
  }
}

// --------------------------------------------------- the headline claim

TEST(CycleReduction, ParulelUsesFarFewerCyclesThanOps5) {
  const auto w = workloads::make_tc(24, 60, 17);
  const Program p = parse_program(w.source);
  RunStats seq_stats, par_stats;
  run_sequential(p, MatcherKind::Rete, Strategy::Lex, &seq_stats);
  run_parallel(p, 4, &par_stats);
  // The parallel engine may fire MORE instances: many derivations of
  // one path fire together before the negation can suppress them (the
  // duplicate asserts are absorbed). It can never fire fewer.
  EXPECT_GE(par_stats.total_firings, seq_stats.total_firings);
  // ... in a fraction of the cycles. The exact ratio is workload-sized;
  // >= 10x is robust at this scale.
  EXPECT_GE(seq_stats.cycles, par_stats.cycles * 10);
}

}  // namespace
}  // namespace parulel
