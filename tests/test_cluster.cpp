// Multi-process cluster tests: real-socket sites, partitioned durable
// state, and the headline convergence invariant.
//
// The claim under test (the tentpole): for any eventually-delivering
// fault plan PLUS kill -9 of any site at any barrier boundary, a 3-site
// process cluster reproduces the fault-free single-process
// DistributedEngine::global_fingerprint() bit for bit. The chaos sweep
// below runs it across seeds x fault plans x kill boundaries, with each
// killed site recovering from its WAL and rejoining under a bumped
// epoch. Alongside: wire codec round-trips, site WAL recovery, the
// protocol's error rows (`err site-unreachable`, `err epoch-stale`),
// and driver config refusals.
#include <gtest/gtest.h>

#include <poll.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "distrib/cluster_driver.hpp"
#include "distrib/dist_engine.hpp"
#include "distrib/site_journal.hpp"
#include "distrib/wire.hpp"
#include "lang/parser.hpp"
#include "net/cluster.hpp"
#include "service/journal.hpp"
#include "support/error.hpp"
#include "wm/fact.hpp"
#include "workloads/workloads.hpp"

#ifndef PARULEL_SITE_BIN
#error "PARULEL_SITE_BIN must point at the parulel_site binary"
#endif

namespace parulel {
namespace {

namespace fs = std::filesystem;

/// A throwaway directory, removed on scope exit.
struct TempDir {
  fs::path path;
  TempDir() {
    char buf[] = "/tmp/parulel_cluster_XXXXXX";
    path = ::mkdtemp(buf);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::string write_program(const TempDir& dir, const std::string& source) {
  const fs::path p = dir.path / "program.clp";
  std::ofstream out(p);
  out << source;
  return p.string();
}

/// Fault-free single-process reference: the fingerprint every chaos run
/// must reproduce.
std::uint64_t reference_fingerprint(const workloads::Workload& wl,
                                    unsigned sites) {
  const Program program = parse_program(wl.source);
  DistConfig cfg;
  cfg.sites = sites;
  cfg.max_cycles = 10'000;
  PartitionScheme scheme(program, wl.partition);
  DistributedEngine engine(program, std::move(scheme), cfg);
  engine.assert_initial_facts();
  engine.run();
  return engine.global_fingerprint();
}

std::string partition_spec_of(const workloads::Workload& wl) {
  std::string spec;
  for (const auto& [tmpl, slot] : wl.partition) {
    if (!spec.empty()) spec += ",";
    spec += tmpl + "=" + slot;
  }
  return spec;
}

ClusterOutcome run_cluster(const workloads::Workload& wl, unsigned sites,
                           const std::string& fault_spec,
                           const TempDir& dir, bool journal) {
  const Program program = parse_program(wl.source);
  ClusterConfig cfg;
  cfg.sites = sites;
  cfg.program_path = write_program(dir, wl.source);
  cfg.site_bin = PARULEL_SITE_BIN;
  if (journal) {
    const fs::path wal_dir = dir.path / "wal";
    fs::create_directories(wal_dir);
    cfg.journal_dir = wal_dir.string();
  }
  cfg.partition_spec = partition_spec_of(wl);
  cfg.fault_spec = fault_spec;
  if (!fault_spec.empty()) cfg.faults = FaultPlan::parse(fault_spec);
  cfg.max_cycles = 10'000;
  cfg.checkpoint_every = 4;  // small, so sweeps exercise snapshot rewrites
  cfg.fsync = false;         // durability ordering still holds; CI speed
  ClusterDriver driver(program, cfg);
  return driver.run();
}

// ---------------------------------------------------------------------
// Wire codec

TEST(ClusterWire, FactRoundTrip) {
  const auto wl = workloads::make_tc(4, 6, 1);
  const Program program = parse_program(wl.source);
  const auto& fact = program.initial_facts.front();

  const std::string bytes = encode_fact_wire(fact.tmpl, fact.slots,
                                             *program.symbols, program.schema);
  const std::string hex = to_hex(bytes);
  EXPECT_EQ(from_hex(hex), bytes);

  auto [tmpl, slots] = decode_fact_wire(bytes, *program.symbols,
                                        program.schema);
  EXPECT_EQ(tmpl, fact.tmpl);
  EXPECT_EQ(fact_content_hash(tmpl, slots),
            fact_content_hash(fact.tmpl, fact.slots));
}

TEST(ClusterWire, OpRoundTripAndFieldParsing) {
  const auto wl = workloads::make_tc(4, 6, 1);
  const Program program = parse_program(wl.source);
  const auto& fact = program.initial_facts.front();

  ClusterOp op{ClusterOp::Kind::Retract, fact.tmpl,
               {fact.slots.begin(), fact.slots.end()}};
  const std::string hex = encode_op_hex(op, *program.symbols, program.schema);
  const ClusterOp back = decode_op_hex(hex, *program.symbols, program.schema);
  EXPECT_EQ(back.kind, ClusterOp::Kind::Retract);
  EXPECT_EQ(back.tmpl, op.tmpl);
  EXPECT_EQ(fact_content_hash(back.tmpl, back.slots),
            fact_content_hash(op.tmpl, op.slots));

  const std::string line = "cc-batch from=2 epoch=7 seq=41 kind=assert";
  EXPECT_EQ(wire_field_u64(line, "from", 99), 2u);
  EXPECT_EQ(wire_field_u64(line, "epoch", 99), 7u);
  EXPECT_EQ(wire_field_u64(line, "seq", 99), 41u);
  EXPECT_EQ(wire_field_u64(line, "nope", 99), 99u);
  EXPECT_EQ(wire_field_str(line, "kind"), "assert");
}

TEST(ClusterWire, DecodeRejectsGarbage) {
  const auto wl = workloads::make_tc(4, 6, 1);
  const Program program = parse_program(wl.source);
  EXPECT_THROW(decode_fact_wire("not a wire fact", *program.symbols,
                                program.schema),
               RuntimeError);
  EXPECT_THROW(from_hex("abc"), RuntimeError);   // odd length
  EXPECT_THROW(from_hex("zz"), RuntimeError);    // non-hex
}

// ---------------------------------------------------------------------
// Site WAL

TEST(SiteJournal, BatchAndSnapshotRoundTripThroughRecovery) {
  const auto wl = workloads::make_tc(5, 8, 3);
  const Program program = parse_program(wl.source);
  TempDir dir;
  const std::string path = (dir.path / "site-0.wal").string();

  {
    auto journal = service::SessionJournal::create(path, "site-0", wl.source,
                                                   /*fsync=*/false, nullptr);
    SiteBatchRecord rec;
    rec.seq = 1;
    rec.epoch = 1;
    rec.cycle = 0;
    for (const auto& fact : program.initial_facts) {
      rec.local.push_back({ClusterOp::Kind::Assert, fact.tmpl, fact.slots});
    }
    // One peer message in the same batch: dedup state must survive too.
    SiteAppliedMsg msg;
    msg.from = 1;
    msg.epoch = 2;
    msg.seq = 5;
    msg.op = rec.local.front();
    msg.op.kind = ClusterOp::Kind::Assert;
    rec.applied.push_back(msg);
    journal->append(encode_site_batch(rec, *program.symbols, program.schema));
  }

  SiteRecovery rec = recover_site_wal(path, program, wl.source, 3);
  ASSERT_NE(rec.wm, nullptr);
  // The fence covers the site's OWN stream: record epoch 1 -> next is
  // 2. Peer message epochs (the applied msg carries epoch 2) are dedup
  // keys, not incarnation evidence.
  EXPECT_EQ(rec.next_epoch, 2u);
  EXPECT_EQ(rec.last_seq, 1u);
  EXPECT_GE(rec.wm->alive_count(), program.initial_facts.size());
  ASSERT_EQ(rec.recv.size(), 3u);
  // The replayed dedup state suppresses a redelivery of (1, e2, s5).
  EXPECT_TRUE(rec.recv[1].by_epoch.at(2).contains(5));
}

TEST(SiteJournal, RejectsProgramMismatchAndSeqGaps) {
  const auto wl = workloads::make_tc(4, 6, 1);
  const Program program = parse_program(wl.source);
  TempDir dir;
  const std::string path = (dir.path / "site-0.wal").string();
  {
    auto journal = service::SessionJournal::create(path, "site-0", wl.source,
                                                   /*fsync=*/false, nullptr);
    SiteBatchRecord rec;
    rec.seq = 2;  // gap: recovery expects 1
    rec.epoch = 1;
    rec.cycle = 1;
    journal->append(encode_site_batch(rec, *program.symbols, program.schema));
  }
  EXPECT_THROW(recover_site_wal(path, program, "other program", 2),
               service::JournalError);
  EXPECT_THROW(recover_site_wal(path, program, wl.source, 2),
               service::JournalError);
}

// ---------------------------------------------------------------------
// Driver config refusals

TEST(ClusterDriverConfig, RefusesCrashPlanWithoutJournalDir) {
  const auto wl = workloads::make_tc(4, 6, 1);
  const Program program = parse_program(wl.source);
  ClusterConfig cfg;
  cfg.sites = 3;
  cfg.site_bin = PARULEL_SITE_BIN;
  cfg.program_path = "/dev/null";
  cfg.faults = FaultPlan::parse("seed=1,crash=1@2+2");
  EXPECT_THROW(ClusterDriver(program, cfg), RuntimeError);
}

TEST(ClusterDriverConfig, RefusesSpawnWithoutBinary) {
  const auto wl = workloads::make_tc(4, 6, 1);
  const Program program = parse_program(wl.source);
  ClusterConfig cfg;
  cfg.sites = 2;
  cfg.spawn = true;  // but no site_bin
  EXPECT_THROW(ClusterDriver(program, cfg), RuntimeError);
}

// ---------------------------------------------------------------------
// Protocol error rows, exercised against a real driver in manual mode

TEST(ClusterProtocol, StrayAndZombieHellosAreFenced) {
  const auto wl = workloads::make_tc(4, 6, 1);
  const Program program = parse_program(wl.source);
  const auto& fact = program.initial_facts.front();
  const std::string fact_hex = to_hex(encode_fact_wire(
      fact.tmpl, fact.slots, *program.symbols, program.schema));
  const std::uint64_t expect_fp =
      0x5bd1e995u ^ fingerprint_mix(fact_content_hash(fact.tmpl, fact.slots));

  // Pick a free port, then hand it to the driver (tiny reuse race,
  // acceptable in tests).
  std::uint16_t port = 0;
  {
    std::string err;
    const int fd = net::listen_tcp(0, &port, &err);
    ASSERT_GE(fd, 0) << err;
    ::close(fd);
  }

  ClusterConfig cfg;
  cfg.sites = 2;
  cfg.spawn = false;  // manual deployment: we play the sites
  cfg.port = port;
  cfg.max_cycles = 100;
  cfg.log = &std::cerr;
  ClusterOutcome outcome;
  std::thread driver_thread([&] {
    ClusterDriver driver(program, cfg);
    outcome = driver.run();
  });

  auto dial = [&]() {
    std::string err;
    int fd = -1;
    for (int tries = 0; tries < 100 && fd < 0; ++tries) {
      fd = net::dial_tcp("127.0.0.1", port, &err, 1000);
      if (fd < 0) ::usleep(20'000);
    }
    EXPECT_GE(fd, 0) << err;
    return net::LineConn(fd);
  };
  auto read_one = [](net::LineConn& conn) {
    std::vector<std::string> lines;
    for (int tries = 0; tries < 200 && lines.empty(); ++tries) {
      if (!conn.read_lines(lines) && lines.empty()) break;
      if (lines.empty()) {
        pollfd pfd{conn.fd(), POLLIN, 0};
        ::poll(&pfd, 1, 50);
      }
    }
    return lines;
  };

  // A site id outside the cluster is turned away.
  {
    net::LineConn stray = dial();
    stray.write_line("cluster-hello parulel/2 site=9 epoch=1 port=1");
    const auto lines = read_one(stray);
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(lines.front(), "err site-unreachable");
  }

  // Site 0 joins at epoch 7; a zombie incarnation presenting epoch 6
  // afterwards is fenced.
  // Lines that arrive bundled with the hello reply (cluster-peers, an
  // early barrier) must reach the serve loops below, not be dropped.
  std::vector<std::string> spill0, spill1;

  net::LineConn site0 = dial();
  site0.write_line("cluster-hello parulel/2 site=0 epoch=7 port=1000");
  {
    auto lines = read_one(site0);
    ASSERT_FALSE(lines.empty());
    EXPECT_TRUE(lines.front().rfind("ok cluster-hello", 0) == 0)
        << lines.front();
    EXPECT_EQ(wire_field_u64(lines.front(), "sites"), 2u);
    spill0.assign(std::make_move_iterator(lines.begin() + 1),
                  std::make_move_iterator(lines.end()));
  }
  {
    net::LineConn zombie = dial();
    zombie.write_line("cluster-hello parulel/2 site=0 epoch=6 port=1001");
    const auto lines = read_one(zombie);
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(lines.front(), "err epoch-stale");
  }

  net::LineConn site1 = dial();
  site1.write_line("cluster-hello parulel/2 site=1 epoch=1 port=1001");
  {
    auto lines = read_one(site1);
    ASSERT_FALSE(lines.empty());
    EXPECT_TRUE(lines.front().rfind("ok cluster-hello", 0) == 0);
    spill1.assign(std::make_move_iterator(lines.begin() + 1),
                  std::make_move_iterator(lines.end()));
  }

  // Both fake sites now serve the driver's barrier loop: always-zero
  // reports make round 1 quiescent (round 0 can't be: joins force one
  // extra round); then answer cc-dump with one SHARED fact each — the
  // driver must dedup replicated contents, not double-count them.
  auto serve = [&](net::LineConn& conn, std::vector<std::string> lines) {
    bool running = true;
    bool alive = true;
    while (running) {
      for (const std::string& line : lines) {
        if (line.rfind("barrier ", 0) == 0) {
          const std::string cycle = line.substr(8);
          conn.write_line(
              "barrier-done cycle=" + cycle +
              " fired=0 applied=0 pending=0 inbox=0 halted=0 facts=1"
              " sent=0 applied-total=0 dup=0 retries=0 dropped=0 delayed=0"
              " redials=0 batches=0 snapshots=0 firings=0");
        } else if (line.rfind("cc-dump", 0) == 0) {
          conn.write_line("ok cc-dump n=1 fingerprint=0");
          conn.write_line("fact " + fact_hex);
        } else if (line.rfind("cc-stop", 0) == 0) {
          conn.write_line("ok cc-stop");
          running = false;
        }
      }
      if (!alive || !running) break;
      {
        pollfd pfd{conn.fd(), POLLIN, 0};
        ::poll(&pfd, 1, 50);
      }
      lines.clear();
      alive = conn.read_lines(lines);
    }
  };
  std::thread t0([&] { serve(site0, std::move(spill0)); });
  std::thread t1([&] { serve(site1, std::move(spill1)); });
  driver_thread.join();
  t0.join();
  t1.join();

  EXPECT_TRUE(outcome.quiescent);
  EXPECT_EQ(outcome.facts, 1u);  // the shared fact counted once
  EXPECT_EQ(outcome.fingerprint, expect_fp);
}

// ---------------------------------------------------------------------
// The headline invariant

TEST(ClusterConvergence, FaultFreeMatchesSimulatedEngine) {
  const auto wl = workloads::make_tc(10, 18, 5);
  const std::uint64_t want = reference_fingerprint(wl, 3);
  TempDir dir;
  const ClusterOutcome out = run_cluster(wl, 3, "", dir, /*journal=*/false);
  EXPECT_TRUE(out.quiescent);
  EXPECT_EQ(out.fingerprint, want);
  EXPECT_EQ(out.stats.dropped, 0u);
  EXPECT_EQ(out.stats.retries, 0u);
}

TEST(ClusterConvergence, SingleSiteDegenerateCluster) {
  const auto wl = workloads::make_tc(8, 14, 2);
  const std::uint64_t want = reference_fingerprint(wl, 1);
  TempDir dir;
  const ClusterOutcome out = run_cluster(wl, 1, "", dir, /*journal=*/true);
  EXPECT_TRUE(out.quiescent);
  EXPECT_EQ(out.fingerprint, want);
  EXPECT_EQ(out.stats.sent, 0u);  // one site: nothing to ship
}

// The acceptance sweep: >=8 seeds x >=3 fault plans x kill -9 at >=2
// distinct barrier boundaries (cycles 1 and 3; the third plan kills at
// BOTH, plus a second site). Every run must land on the fault-free
// fingerprint exactly.
TEST(ClusterConvergence, ChaosSweepKillNineAtBatchBoundaries) {
  const auto wl = workloads::make_tc(10, 18, 5);
  const std::uint64_t want = reference_fingerprint(wl, 3);

  const std::string plans[] = {
      "loss=0.15,dup=0.05,crash=1@1+2",             // kill site 1 at cycle 1
      "loss=0.2,delay=0.15,maxdelay=2,crash=2@3+2",  // kill site 2 at cycle 3
      "dup=0.1,delay=0.2,maxdelay=3,crash=0@1+1,crash=1@3+2",  // two kills
  };
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (const std::string& plan : plans) {
      const std::string spec = plan + ",seed=" + std::to_string(seed);
      TempDir dir;
      const ClusterOutcome out =
          run_cluster(wl, 3, spec, dir, /*journal=*/true);
      EXPECT_TRUE(out.quiescent) << spec;
      EXPECT_EQ(out.fingerprint, want)
          << "diverged under " << spec << ": kills=" << out.stats.kills
          << " restores=" << out.stats.restores
          << " retries=" << out.stats.retries;
      EXPECT_GE(out.stats.kills, 1u) << spec;
      EXPECT_EQ(out.stats.kills, out.stats.restores) << spec;
    }
  }
}

}  // namespace
}  // namespace parulel
