// Unit tests: observability layer — JSON writer, metrics registry,
// trace sink wiring, schema tables, and the allocation discipline of
// the hot emission path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "engine/par_engine.hpp"
#include "engine/seq_engine.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "workloads/workloads.hpp"

// ---------------------------------------------------------------------
// Global allocation counter, so tests can assert a code path performs
// no heap allocation once at steady state.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace parulel {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON validity checker (objects, arrays, strings, numbers,
// true/false/null). Strict enough to catch missing commas, unescaped
// control characters, and truncated documents.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (!std::strchr("\"\\/bfnrt", e)) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr(".eE+-", text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool is_valid_json(std::string_view text) {
  return JsonChecker(text).valid();
}

/// Pull a numeric field value out of a flat JSON object line.
std::uint64_t field_u64(const std::string& line, const std::string& name) {
  const std::string needle = "\"" + name + "\":";
  const auto at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << name << " missing in " << line;
  if (at == std::string::npos) return 0;
  return std::strtoull(line.c_str() + at + needle.size(), nullptr, 10);
}

bool has_field(const std::string& line, const std::string& name) {
  return line.find("\"" + name + "\":") != std::string::npos;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

// ---------------------------------------------------------------------
// JsonWriter

TEST(JsonWriter, EscapesStringsAndFormatsNumbers) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("name", "a\"b\\c\nd\te");
  w.field("count", std::uint64_t{42});
  w.field("neg", std::int64_t{-7});
  w.field("frac", 0.5);
  w.field("flag", true);
  w.key("ctrl").value(std::string_view("\x01", 1));
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"a\\\"b\\\\c\\nd\\te\",\"count\":42,\"neg\":-7,"
            "\"frac\":0.5,\"flag\":true,\"ctrl\":\"\\u0001\"}");
  EXPECT_TRUE(is_valid_json(w.str()));
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("nan", std::nan(""));
  w.field("ok", 1.0);
  w.end_object();
  EXPECT_EQ(w.str(), "{\"nan\":null,\"ok\":1}");
  EXPECT_TRUE(is_valid_json(w.str()));
}

TEST(JsonWriter, ClearReusesBufferWithoutAllocating) {
  obs::JsonWriter w;
  // Warm up: reach steady-state capacity.
  for (int i = 0; i < 3; ++i) {
    w.clear();
    w.begin_object();
    w.field("cycle", std::uint64_t{123456789});
    w.field("engine", "parallel-treat");
    w.field("match_ns", std::uint64_t{987654321});
    w.end_object();
  }
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    w.clear();
    w.begin_object();
    w.field("cycle", static_cast<std::uint64_t>(i));
    w.field("engine", "parallel-treat");
    w.field("match_ns", std::uint64_t{987654321});
    w.end_object();
  }
  EXPECT_EQ(g_allocations.load(), before)
      << "steady-state JSONL emission must not allocate";
}

// ---------------------------------------------------------------------
// Schema tables

TEST(StatsSchema, CycleFieldsCoverPhaseTimings) {
  bool saw_match = false, saw_redact = false, saw_fire = false,
       saw_merge = false;
  for (const auto& f : obs::cycle_fields()) {
    const std::string_view name = f.name;
    saw_match |= name == "match_ns";
    saw_redact |= name == "redact_ns";
    saw_fire |= name == "fire_ns";
    saw_merge |= name == "merge_ns";
  }
  EXPECT_TRUE(saw_match && saw_redact && saw_fire && saw_merge);
}

TEST(StatsSchema, RunFieldsRoundTripThroughMemberPointers) {
  RunStats s;
  s.cycles = 3;
  s.total_firings = 17;
  s.wall_ns = 999;
  std::uint64_t cycles = 0, firings = 0, wall = 0;
  for (const auto& f : obs::run_fields()) {
    const std::string_view name = f.name;
    if (name == "cycles") cycles = s.*f.member;
    if (name == "firings") firings = s.*f.member;
    if (name == "wall_ns") wall = s.*f.member;
  }
  EXPECT_EQ(cycles, 3u);
  EXPECT_EQ(firings, 17u);
  EXPECT_EQ(wall, 999u);
}

TEST(StatsSchema, CompileFieldsAreUniqueAndRoundTrip) {
  CompileStats s;
  s.instructions = 42;
  s.dispatches = 1000;
  std::vector<std::string_view> names;
  std::uint64_t instructions = 0, dispatches = 0;
  for (const auto& f : obs::compile_fields()) {
    ASSERT_NE(f.name, nullptr);
    EXPECT_NE(std::string_view(f.name), "");
    names.push_back(f.name);
    if (std::string_view(f.name) == "instructions") instructions = s.*f.member;
    if (std::string_view(f.name) == "dispatches") dispatches = s.*f.member;
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end())
      << "duplicate compile field name";
  EXPECT_EQ(instructions, 42u);
  EXPECT_EQ(dispatches, 1000u);
}

TEST(StatsSchema, CompileStatsPublishUsesPrefix) {
  CompileStats s;
  s.instructions = 7;
  s.emits = 3;
  obs::MetricsRegistry reg;
  s.publish(reg);
  EXPECT_EQ(reg.counter("compile.instructions").get(), 7u);
  EXPECT_EQ(reg.counter("compile.emits").get(), 3u);
  EXPECT_EQ(reg.size(), obs::compile_fields().size());
}

TEST(StatsSchema, RunToJsonIsValid) {
  RunStats s;
  s.cycles = 2;
  s.halted = true;
  const std::string j = s.to_json();
  EXPECT_TRUE(is_valid_json(j)) << j;
  EXPECT_TRUE(has_field(j, "cycles"));
  EXPECT_TRUE(has_field(j, "halted"));
}

// ---------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistry, GetOrCreateReturnsStableHandles) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("engine.cycles");
  obs::Counter& b = reg.counter("engine.cycles");
  EXPECT_EQ(&a, &b);
  a.add(5);
  // Force growth; the original handle must stay valid.
  for (int i = 0; i < 200; ++i) {
    reg.counter("filler." + std::to_string(i)).add(1);
  }
  a.add(2);
  EXPECT_EQ(reg.counter("engine.cycles").get(), 7u);
  EXPECT_EQ(reg.size(), 201u);
}

TEST(MetricsRegistry, ExportsSortedTextAndValidJson) {
  obs::MetricsRegistry reg;
  reg.set("b.two", 2);
  reg.set("a.one", 1);
  EXPECT_EQ(reg.to_text(), "a.one 1\nb.two 2\n");
  EXPECT_EQ(reg.to_json(), "{\"a.one\":1,\"b.two\":2}");
  EXPECT_TRUE(is_valid_json(reg.to_json()));
}

TEST(MetricsRegistry, RunStatsPublishUsesPrefix) {
  RunStats s;
  s.cycles = 4;
  s.total_firings = 9;
  obs::MetricsRegistry reg;
  s.publish(reg);
  EXPECT_EQ(reg.counter("run.cycles").get(), 4u);
  EXPECT_EQ(reg.counter("run.firings").get(), 9u);
}

// ---------------------------------------------------------------------
// Trace sink driven by the real engines

TEST(TraceSink, ParallelEngineEmitsOneValidCycleEventPerCycle) {
  const Program p = parse_program(workloads::make_sieve(60, true).source);
  std::ostringstream trace_out;
  obs::TraceSink sink(trace_out);
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.matcher = MatcherKind::ParallelTreat;
  cfg.trace = &sink;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  const RunStats stats = engine.run();

  const auto lines = lines_of(trace_out.str());
  ASSERT_EQ(sink.events(), lines.size());
  std::size_t cycle_events = 0, run_events = 0;
  for (const auto& line : lines) {
    EXPECT_TRUE(is_valid_json(line)) << line;
    if (line.find("\"type\":\"cycle\"") != std::string::npos) {
      ++cycle_events;
      // Phase timings must sum to the emitted total.
      const std::uint64_t total = field_u64(line, "total_ns");
      EXPECT_EQ(total, field_u64(line, "match_ns") +
                           field_u64(line, "redact_ns") +
                           field_u64(line, "fire_ns") +
                           field_u64(line, "merge_ns"));
      EXPECT_TRUE(has_field(line, "conflict_set"));
      EXPECT_TRUE(has_field(line, "write_conflicts"));
      EXPECT_TRUE(has_field(line, "alpha_activations"));
      EXPECT_TRUE(has_field(line, "pool_jobs"));
    } else if (line.find("\"type\":\"run\"") != std::string::npos) {
      ++run_events;
      EXPECT_EQ(field_u64(line, "cycles"), stats.cycles);
      EXPECT_EQ(field_u64(line, "firings"), stats.total_firings);
    }
  }
  EXPECT_EQ(cycle_events, stats.cycles);
  EXPECT_EQ(run_events, 1u);
}

TEST(TraceSink, SequentialEngineTracesToo) {
  const Program p = parse_program(R"(
    (deftemplate counter (slot n))
    (defrule count-up
      ?c <- (counter (n ?n))
      (test (< ?n 5))
      =>
      (retract ?c)
      (assert (counter (n (+ ?n 1)))))
    (deffacts init (counter (n 0))))");
  std::ostringstream trace_out;
  obs::TraceSink sink(trace_out);
  EngineConfig cfg;
  cfg.trace = &sink;
  SequentialEngine engine(p, cfg);
  engine.assert_initial_facts();
  const RunStats stats = engine.run();

  const auto lines = lines_of(trace_out.str());
  std::size_t cycle_events = 0;
  for (const auto& line : lines) {
    EXPECT_TRUE(is_valid_json(line)) << line;
    if (line.find("\"type\":\"cycle\"") != std::string::npos) ++cycle_events;
  }
  EXPECT_EQ(cycle_events, stats.cycles);
  EXPECT_EQ(stats.total_firings, 5u);
}

TEST(TraceSink, PerCycleWriteConflictsSumToRunTotal) {
  // The non-dedup sieve produces genuine parallel write conflicts; each
  // must be attributed to the cycle that detected it.
  const Program p = parse_program(workloads::make_sieve(80, false).source);
  std::ostringstream trace_out;
  obs::TraceSink sink(trace_out);
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.matcher = MatcherKind::ParallelTreat;
  cfg.trace = &sink;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_GT(stats.total_write_conflicts, 0u);

  std::uint64_t per_cycle_sum = 0;
  for (const auto& line : lines_of(trace_out.str())) {
    if (line.find("\"type\":\"cycle\"") != std::string::npos) {
      per_cycle_sum += field_u64(line, "write_conflicts");
    }
  }
  EXPECT_EQ(per_cycle_sum, stats.total_write_conflicts);
}

TEST(Metrics, EngineRunPublishesMatcherAndPoolMetrics) {
  const Program p = parse_program(workloads::make_sieve(60, true).source);
  obs::MetricsRegistry reg;
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.matcher = MatcherKind::ParallelTreat;
  cfg.metrics = &reg;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  const RunStats stats = engine.run();

  EXPECT_EQ(reg.counter("run.cycles").get(), stats.cycles);
  EXPECT_EQ(reg.counter("run.firings").get(), stats.total_firings);
  EXPECT_GT(reg.counter("match.insts_derived").get(), 0u);
  EXPECT_GT(reg.counter("match.alpha_activations").get(), 0u);
  EXPECT_GT(reg.counter("pool.jobs").get(), 0u);
  EXPECT_EQ(reg.counter("engine.threads").get(), 2u);
  EXPECT_GT(reg.counter("meta.redactions").get(), 0u);
  // A non-compiled matcher must not leak compile.* names into exports.
  EXPECT_EQ(reg.to_json().find("compile."), std::string::npos);
}

TEST(Metrics, CompiledMatcherRunPublishesCompileCounters) {
  const Program p = parse_program(workloads::make_sieve(60, false).source);
  obs::MetricsRegistry reg;
  EngineConfig cfg;
  cfg.matcher = MatcherKind::Compiled;
  cfg.metrics = &reg;
  SequentialEngine engine(p, cfg);
  engine.assert_initial_facts();
  engine.run();

  EXPECT_GT(reg.counter("compile.instructions").get(), 0u);
  EXPECT_GT(reg.counter("compile.code_bytes").get(), 0u);
  EXPECT_GT(reg.counter("compile.dispatches").get(), 0u);
  EXPECT_GT(reg.counter("compile.net_runs").get(), 0u);
  EXPECT_GT(reg.counter("compile.emits").get(), 0u);
  // The compile family lands in the sorted JSON export with the rest.
  const std::string j = reg.to_json();
  EXPECT_TRUE(is_valid_json(j)) << j;
  EXPECT_NE(j.find("\"compile.dispatches\""), std::string::npos);
  EXPECT_NE(j.find("\"match.insts_derived\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Thread-pool utilization accounting

TEST(PoolStats, ParallelForCountsJobsAndBusyTime) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(0, 1000, [&](std::size_t i, unsigned) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 499500u);
  const PoolStatsSnapshot snap = pool.stats();
  EXPECT_GE(snap.batches, 1u);
  EXPECT_GE(snap.jobs, 1u);
  EXPECT_EQ(snap.per_worker_jobs.size(), 3u);
  std::uint64_t per_worker_total = 0;
  for (const std::uint64_t j : snap.per_worker_jobs) per_worker_total += j;
  EXPECT_EQ(per_worker_total, snap.jobs);
}

}  // namespace
}  // namespace parulel
