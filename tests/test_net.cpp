// TCP front-end tests: protocol robustness and stdin/TCP equivalence.
//
// Two gates. The robustness half throws hostile inputs at a live
// NetServer — malformed frames, partial writes, oversized lines,
// mid-request disconnects, interleaved pipelined clients, connection
// caps, idle timeouts — and requires structured `err` responses and a
// healthy server afterwards, never a crash or cross-client corruption.
//
// The equivalence half is the contract that makes the TCP front-end
// trustworthy: the same command script fed through the stdin serve()
// loop and through a TCP connection must produce byte-identical
// response streams, because both wrap the same ServeProtocol over a
// synchronous service. Swept over the orderbook and monitor example
// programs (paths resolved via the PARULEL_SOURCE_DIR compile
// definition).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <filesystem>
#include <memory>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/net_server.hpp"
#include "net/retry_client.hpp"
#include "service/protocol.hpp"
#include "service/serve.hpp"
#include "support/error.hpp"

namespace parulel::net {
namespace {

constexpr const char* kCopySource = R"((deftemplate item (slot id))
(deftemplate seen (slot id))
(defrule copy
  (item (id ?i))
  (not (seen (id ?i)))
  =>
  (assert (seen (id ?i))))
)";

std::string write_temp_program() {
  const std::string path = "/tmp/parulel_test_net.clp";
  std::ofstream out(path);
  out << kCopySource;
  return path;
}

/// A NetServer on an ephemeral port with its run() loop on a thread.
struct ServerFixture {
  explicit ServerFixture(NetServerConfig cfg = {}) : server(std::move(cfg)) {
    start_ok = server.start();
    EXPECT_TRUE(start_ok) << server.error();
    if (start_ok) {
      thread = std::thread([this] { server.run(); });
    }
  }
  ~ServerFixture() {
    if (start_ok) {
      server.stop();
      thread.join();
    }
  }
  NetServer server;
  std::thread thread;
  bool start_ok = false;
};

/// A deliberately low-level client for sending hostile byte sequences
/// the well-behaved NetClient cannot produce.
struct RawClient {
  int fd = -1;

  ~RawClient() { close(); }

  bool connect(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    timeval tv{5, 0};  // every recv in these tests is bounded
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool send(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Read until `lines` newline-terminated lines arrived (or timeout /
  /// EOF); returns everything read.
  std::string recv_lines(std::size_t lines) {
    std::string out;
    std::size_t seen = 0;
    char buf[4096];
    while (seen < lines) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      for (ssize_t i = 0; i < n; ++i) {
        if (buf[i] == '\n') ++seen;
      }
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

  /// Read until the server closes the connection (or timeout).
  std::string recv_all() {
    std::string out;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

  void close() {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
};

// ------------------------------------------------------------ handshake

TEST(NetHello, VersionNegotiation) {
  ServerFixture fx;
  RawClient c;
  ASSERT_TRUE(c.connect(fx.server.port()));
  // Bare hello gets the current revision; an explicit version is echoed
  // back (a parulel/1 client keeps seeing parulel/1); unknown versions
  // are refused with the full menu.
  ASSERT_TRUE(c.send("hello\nhello parulel/1\nhello parulel/2\n"
                     "hello parulel/99\n"));
  const std::string out = c.recv_lines(4);
  EXPECT_EQ(out,
            "ok hello parulel/2\n"
            "ok hello parulel/1\n"
            "ok hello parulel/2\n"
            "err unsupported protocol version: parulel/99 "
            "(server speaks parulel/2, parulel/1)\n");
}

TEST(NetHello, NetClientHandshakesOnConnect) {
  ServerFixture fx;
  NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fx.server.port()))
      << client.error();
  EXPECT_EQ(client.server_version(),
            service::ServeProtocol::kProtocolVersion);
}

// ----------------------------------------------------------- robustness

TEST(NetRobustness, MalformedFramesGetStructuredErrors) {
  ServerFixture fx;
  RawClient c;
  ASSERT_TRUE(c.connect(fx.server.port()));
  // Garbage command, binary bytes, missing arguments, bogus session —
  // every one must produce exactly one `err` line, and the connection
  // must stay usable afterwards.
  ASSERT_TRUE(c.send("frobnicate\n"));
  ASSERT_TRUE(c.send("\x01\x02\xff\xfe\n"));
  ASSERT_TRUE(c.send("open\n"));
  ASSERT_TRUE(c.send("assert nosuch item 1\n"));
  const std::string errors = c.recv_lines(4);
  EXPECT_EQ(4u, static_cast<std::size_t>(
                    std::count(errors.begin(), errors.end(), '\n')));
  std::istringstream lines(errors);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("err ", 0), 0u) << line;
  }
  ASSERT_TRUE(c.send("hello\n"));
  EXPECT_EQ(c.recv_lines(1), "ok hello parulel/2\n");
}

TEST(NetRobustness, PartialWritesReassembleIntoOneRequest) {
  ServerFixture fx;
  RawClient c;
  ASSERT_TRUE(c.connect(fx.server.port()));
  for (const char* piece : {"hel", "lo par", "ulel/1"}) {
    ASSERT_TRUE(c.send(piece));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(c.send("\n"));
  EXPECT_EQ(c.recv_lines(1), "ok hello parulel/1\n");
}

TEST(NetRobustness, OversizedLinesAreDiscardedWithError) {
  NetServerConfig cfg;
  cfg.max_line_bytes = 64;
  ServerFixture fx(cfg);
  RawClient c;
  ASSERT_TRUE(c.connect(fx.server.port()));

  // Terminated oversize line: one error, then normal service resumes.
  ASSERT_TRUE(c.send(std::string(200, 'x') + "\nhello\n"));
  EXPECT_EQ(c.recv_lines(2), "err line-too-long\nok hello parulel/2\n");

  // Unterminated flood: the error arrives as soon as the cap is blown,
  // everything up to the eventual newline is discarded, and the line
  // after it is served normally.
  ASSERT_TRUE(c.send(std::string(300, 'y')));
  EXPECT_EQ(c.recv_lines(1), "err line-too-long\n");
  ASSERT_TRUE(c.send(std::string(100, 'y') + "\nhello\n"));
  EXPECT_EQ(c.recv_lines(1), "ok hello parulel/2\n");

  const NetStats stats = fx.server.stats_snapshot();
  EXPECT_EQ(stats.oversize_lines, 2u);
}

TEST(NetRobustness, MidRequestDisconnectLeavesServerHealthy) {
  const std::string program = write_temp_program();
  ServerFixture fx;
  {
    RawClient dropper;
    ASSERT_TRUE(dropper.connect(fx.server.port()));
    ASSERT_TRUE(dropper.send("open s " + program + "\n"));
    EXPECT_EQ(dropper.recv_lines(1).rfind("ok open", 0), 0u);
    // Die mid-line, with a request fragment in the server's buffer and
    // a session open in this connection's namespace.
    ASSERT_TRUE(dropper.send("assert s it"));
    dropper.close();
  }

  // The server must keep serving, and the dropped connection's session
  // must be reaped (sessions_closed catches up with sessions_opened).
  NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fx.server.port()));
  Response r;
  for (int attempt = 0; attempt < 100; ++attempt) {
    ASSERT_TRUE(client.request("stats", r)) << client.error();
    ASSERT_TRUE(r.ok()) << r.status;
    if (r.status.find("sessions_opened=1") != std::string::npos &&
        r.status.find("sessions_closed=1") != std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(r.status.find("sessions_closed=1"), std::string::npos)
      << r.status;

  // And a fresh connection can reuse the dropped client's session name.
  ASSERT_TRUE(client.request("open s " + program, r));
  EXPECT_TRUE(r.ok()) << r.status;
}

TEST(NetRobustness, InterleavedPipelinedClientsStayIsolated) {
  const std::string program = write_temp_program();
  ServerFixture fx;

  // Both clients use the session name "s": names are per-connection
  // namespaces, so their working memories must never mix.
  NetClient a, b;
  ASSERT_TRUE(a.connect("127.0.0.1", fx.server.port()));
  ASSERT_TRUE(b.connect("127.0.0.1", fx.server.port()));
  Response r;
  ASSERT_TRUE(a.request("open s " + program, r));
  ASSERT_TRUE(r.ok()) << r.status;
  ASSERT_TRUE(b.request("open s " + program, r));
  ASSERT_TRUE(r.ok()) << r.status;

  // Interleave pipelined bursts: each client sends its whole batch,
  // then reads its responses, with the other client's traffic in
  // flight on the shared event loop.
  ASSERT_TRUE(a.send_line("assert s item 1"));
  ASSERT_TRUE(b.send_line("assert s item 2"));
  ASSERT_TRUE(a.send_line("run s"));
  ASSERT_TRUE(b.send_line("run s"));
  ASSERT_TRUE(a.send_line("query s seen"));
  ASSERT_TRUE(b.send_line("query s seen"));
  for (NetClient* c : {&a, &b}) {
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(c->read_response(r)) << c->error();
      EXPECT_TRUE(r.ok()) << r.status;
    }
  }
  ASSERT_TRUE(a.read_response(r));
  ASSERT_EQ(r.status, "ok query n=1");
  ASSERT_EQ(r.details.size(), 1u);
  EXPECT_NE(r.details[0].find("(id 1)"), std::string::npos) << r.details[0];
  ASSERT_TRUE(b.read_response(r));
  ASSERT_EQ(r.status, "ok query n=1");
  ASSERT_EQ(r.details.size(), 1u);
  EXPECT_NE(r.details[0].find("(id 2)"), std::string::npos) << r.details[0];
}

TEST(NetRobustness, ServerFullRejectsWithStructuredError) {
  NetServerConfig cfg;
  cfg.max_connections = 1;
  ServerFixture fx(cfg);

  NetClient first;
  ASSERT_TRUE(first.connect("127.0.0.1", fx.server.port()));

  RawClient second;
  ASSERT_TRUE(second.connect(fx.server.port()));
  EXPECT_EQ(second.recv_all(), "err server-full\n");

  // The admitted connection is unaffected.
  Response r;
  ASSERT_TRUE(first.request("hello", r));
  EXPECT_TRUE(r.ok());
  const NetStats stats = fx.server.stats_snapshot();
  EXPECT_EQ(stats.rejected_full, 1u);
}

TEST(NetRobustness, IdleConnectionsAreCollected) {
  NetServerConfig cfg;
  cfg.idle_timeout_ms = 50;
  ServerFixture fx(cfg);

  RawClient c;
  ASSERT_TRUE(c.connect(fx.server.port()));
  ASSERT_TRUE(c.send("hello\n"));
  EXPECT_EQ(c.recv_lines(1), "ok hello parulel/2\n");
  // Go quiet; the server must close us.
  EXPECT_EQ(c.recv_all(), "");
  const NetStats stats = fx.server.stats_snapshot();
  EXPECT_EQ(stats.idle_closed, 1u);
}

TEST(NetShutdown, DrainFlushesQueuedResponses) {
  ServerFixture fx;
  RawClient c;
  ASSERT_TRUE(c.connect(fx.server.port()));

  // Pipeline a burst; once the first response is back, the server has
  // processed the whole buffered burst (the loop drains a readable
  // connection's buffer before writing). stop() must still deliver
  // every queued response before closing.
  constexpr int kBurst = 100;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) burst += "hello\n";
  ASSERT_TRUE(c.send(burst));
  const std::string first = c.recv_lines(1);
  EXPECT_EQ(first.rfind("ok hello parulel/2\n", 0), 0u) << first;
  fx.server.stop();
  const std::string rest = c.recv_all();
  EXPECT_EQ(static_cast<int>(std::count(first.begin(), first.end(), '\n')) +
                static_cast<int>(std::count(rest.begin(), rest.end(), '\n')),
            kBurst);
}

// --------------------------------------------- stdin / TCP equivalence

std::string serve_via_stdin(const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  service::serve(in, out);
  return out.str();
}

std::string serve_via_tcp(const std::string& script,
                          NetServerConfig cfg = {}) {
  ServerFixture fx(std::move(cfg));
  RawClient c;
  EXPECT_TRUE(c.connect(fx.server.port()));
  EXPECT_TRUE(c.send(script));
  // Every script ends in `quit`, so the server closes after flushing.
  return c.recv_all();
}

std::string example_path(const char* name) {
  return std::string(PARULEL_SOURCE_DIR) + "/examples/programs/" + name;
}

TEST(NetEquivalence, OrderbookScriptIsByteIdentical) {
  const std::string script =
      "hello parulel/1\n"
      "open book " + example_path("orderbook.clp") + "\n"
      "run book\n"
      "assert book buy 101 acme 55 10\n"
      "assert book buy 102 acme 48 20\n"
      "assert book sell 201 acme 50 10\n"
      "run book\n"
      "query book trade\n"
      "query book trade sym=acme\n"
      "query book buy sym=acme\n"
      "snapshot book\n"
      "assert book sell 202 acme 40 20\n"
      "run book\n"
      "query book trade\n"
      "restore book\n"
      "query book trade\n"
      "stats book\n"
      "# bare `stats` is omitted: its latency percentiles are wall-clock\n"
      "# a comment line produces no response\n"
      "\n"
      "bogus-command book\n"
      "close book\n"
      "quit\n";
  const std::string via_stdin = serve_via_stdin(script);
  const std::string via_tcp = serve_via_tcp(script);
  EXPECT_EQ(via_stdin, via_tcp);
  EXPECT_NE(via_stdin.find("ok open book"), std::string::npos) << via_stdin;
  EXPECT_NE(via_stdin.find("ok query"), std::string::npos) << via_stdin;
  EXPECT_NE(via_stdin.find("err unknown command"), std::string::npos)
      << via_stdin;
}

TEST(NetEquivalence, MonitorScriptIsByteIdentical) {
  const std::string script =
      "open mon " + example_path("monitor.clp") + "\n"
      "run mon\n"
      "assert mon event mallory fail 10\n"
      "assert mon event mallory fail 11\n"
      "assert mon event mallory fail 12\n"
      "run mon\n"
      "query mon alert\n"
      "assert mon event mallory login 20\n"
      "run mon\n"
      "query mon incident\n"
      "query mon incident user=mallory\n"
      "stats mon\n"
      "close mon\n"
      "quit\n";
  const std::string via_stdin = serve_via_stdin(script);
  const std::string via_tcp = serve_via_tcp(script);
  EXPECT_EQ(via_stdin, via_tcp);
  EXPECT_NE(via_stdin.find("ok query n=1"), std::string::npos) << via_stdin;
}

TEST(NetEquivalence, EchoModeMatchesToo) {
  const std::string program = write_temp_program();
  const std::string script =
      "open s " + program + "\n"
      "assert s item 7\n"
      "run s\n"
      "query s seen\n"
      "quit\n";

  std::istringstream in(script);
  std::ostringstream out;
  service::ServeOptions sopts;
  sopts.echo = true;
  service::serve(in, out, sopts);

  NetServerConfig cfg;
  cfg.echo = true;
  ServerFixture fx(cfg);
  RawClient c;
  ASSERT_TRUE(c.connect(fx.server.port()));
  ASSERT_TRUE(c.send(script));
  EXPECT_EQ(out.str(), c.recv_all());
}

// The sharded server's byte-identity contract: the SAME script through
// the stdin serve() loop, a single-shard server, and multi-shard
// servers must produce identical response streams — sharding is a
// throughput feature, never a semantics change.
TEST(NetEquivalence, ShardCountNeverChangesResponseBytes) {
  const std::string script =
      "hello parulel/2\n"
      "open book " + example_path("orderbook.clp") + "\n"
      "assert book buy 101 acme 55 10\n"
      "assert book sell 201 acme 50 10\n"
      "run book\n"
      "query book trade\n"
      "open mon " + example_path("monitor.clp") + "\n"
      "assert mon event mallory fail 10\n"
      "run mon\n"
      "query mon alert\n"
      "close mon\n"
      "close book\n"
      "quit\n";
  const std::string via_stdin = serve_via_stdin(script);
  for (const unsigned shards : {1u, 2u, 4u}) {
    NetServerConfig cfg;
    cfg.shards = shards;
    EXPECT_EQ(via_stdin, serve_via_tcp(script, std::move(cfg)))
        << "shards=" << shards;
  }
}

/// Journal directory for one sweep leg, wiped on entry.
std::string fresh_sweep_dir(const std::string& tag) {
  const std::string dir = std::string("/tmp/parulel_net_shards_") + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// The journaled variant is the interesting one: with shards > 1 the
// names below live on DIFFERENT shards (s->0, t->1 of 2; s->0, t->1,
// a->2, b->3 of 4 under the pinning hash), so one connection's script
// exercises the forwarding handshake — and the bytes still cannot
// differ from stdin.
TEST(NetEquivalence, ShardedDurableScriptIsByteIdentical) {
  const std::string program = write_temp_program();
  std::string script = "hello parulel/2\n";
  for (const char* name : {"s", "t", "a", "b"}) {
    script += std::string("open ") + name + " " + program + "\n";
    script += std::string("@1 assert ") + name + " item 7\n";
    script += std::string("@2 run ") + name + "\n";
    script += std::string("query ") + name + " seen\n";
  }
  script += "quit\n";

  std::string via_stdin;
  {
    const std::string dir = fresh_sweep_dir("stdin");
    std::istringstream in(script);
    std::ostringstream out;
    service::ServeOptions sopts;
    sopts.service.journal.dir = dir;
    sopts.service.journal.fsync = false;
    service::serve(in, out, sopts);
    via_stdin = out.str();
  }
  ASSERT_NE(via_stdin.find("ok run"), std::string::npos) << via_stdin;

  for (const unsigned shards : {1u, 2u, 4u}) {
    NetServerConfig cfg;
    cfg.shards = shards;
    cfg.service.journal.dir =
        fresh_sweep_dir("tcp" + std::to_string(shards));
    cfg.service.journal.fsync = false;
    EXPECT_EQ(via_stdin, serve_via_tcp(script, std::move(cfg)))
        << "shards=" << shards;
  }
}

// ------------------------------------------------------------ sharding

TEST(NetSharding, CrossShardSessionsForwardAndStayConsistent) {
  const std::string program = write_temp_program();
  NetServerConfig cfg;
  cfg.shards = 2;
  cfg.service.journal.dir = fresh_sweep_dir("forward");
  cfg.service.journal.fsync = false;
  ServerFixture fx(cfg);
  ASSERT_EQ(fx.server.shards(), 2u);

  // One connection lands on one shard but addresses both names; the
  // name homed on the other shard ("s" -> 0, "t" -> 1) must be served
  // through the forwarding handshake.
  ASSERT_NE(service::shard_for_name("s", 2), service::shard_for_name("t", 2));
  NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fx.server.port()));
  Response r;
  for (const char* name : {"s", "t"}) {
    ASSERT_TRUE(client.request(std::string("open ") + name + " " + program,
                               r));
    ASSERT_TRUE(r.ok()) << r.status;
    ASSERT_TRUE(client.request(std::string("@1 assert ") + name + " item 4",
                               r));
    ASSERT_TRUE(r.ok()) << r.status;
    ASSERT_TRUE(client.request(std::string("@2 run ") + name, r));
    ASSERT_TRUE(r.ok()) << r.status;
    ASSERT_TRUE(client.request(std::string("query ") + name + " seen", r));
    ASSERT_EQ(r.status, "ok query n=1") << r.status;
  }
  const NetStats stats = fx.server.stats_snapshot();
  EXPECT_EQ(stats.shards, 2u);
  EXPECT_GT(stats.forwarded, 0u) << "no line crossed shards";
}

TEST(NetSharding, CrossShardResumeAfterRestart) {
  const std::string program = write_temp_program();
  const std::string dir = fresh_sweep_dir("resume");

  auto extract_fp = [](const std::string& status) {
    const std::size_t at = status.find("fingerprint=");
    EXPECT_NE(at, std::string::npos) << status;
    if (at == std::string::npos) return std::string();
    const std::size_t end = status.find(' ', at);
    return status.substr(at, end == std::string::npos ? end : end - at);
  };

  std::string fp_s, fp_t;
  NetServerConfig cfg;
  cfg.shards = 2;
  cfg.service.journal.dir = dir;
  cfg.service.journal.fsync = false;
  std::uint16_t port = 0;
  {
    ServerFixture fx(cfg);
    port = fx.server.port();
    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    Response r;
    for (const char* name : {"s", "t"}) {
      ASSERT_TRUE(client.request(std::string("open ") + name + " " + program,
                                 r));
      ASSERT_TRUE(r.ok()) << r.status;
      ASSERT_TRUE(client.request(std::string("@1 assert ") + name + " item 9",
                                 r));
      ASSERT_TRUE(r.ok()) << r.status;
      ASSERT_TRUE(client.request(std::string("@2 run ") + name, r));
      ASSERT_TRUE(r.ok()) << r.status;
      (name[0] == 's' ? fp_s : fp_t) = extract_fp(r.status);
    }
  }  // fixture teardown drains; the journals survive

  // Restart over the same directory: each shard recovers its own names,
  // and ONE connection resumes both — whichever shard it lands on, at
  // least one resume crosses shards.
  ServerFixture fx(cfg);
  ASSERT_TRUE(fx.start_ok);
  ASSERT_EQ(fx.server.recovery_reports().size(), 2u);
  for (const auto& report : fx.server.recovery_reports()) {
    EXPECT_TRUE(report.ok) << report.name << ": " << report.error;
  }
  NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fx.server.port()));
  Response r;
  ASSERT_TRUE(client.request("resume s", r));
  ASSERT_TRUE(r.ok()) << r.status;
  EXPECT_NE(r.status.find(fp_s), std::string::npos) << r.status;
  ASSERT_TRUE(client.request("resume t", r));
  ASSERT_TRUE(r.ok()) << r.status;
  EXPECT_NE(r.status.find(fp_t), std::string::npos) << r.status;
  EXPECT_GT(fx.server.stats_snapshot().forwarded, 0u);
}

TEST(NetSharding, QuarantinedResumeAnswersJournalCorrupt) {
  const std::string program = write_temp_program();
  const std::string dir = fresh_sweep_dir("quarantine");

  // Build a journal for "s", then corrupt it mid-file.
  {
    service::ServiceConfig scfg;
    scfg.journal.dir = dir;
    scfg.journal.fsync = false;
    service::RuleService svc(scfg);
    service::ServeProtocol proto(svc);
    std::string out;
    proto.handle_line("open s " + program, out);
    proto.handle_line("@1 assert s item 5", out);
    proto.handle_line("@2 run s", out);
    proto.handle_line("@3 assert s item 7", out);
    proto.handle_line("@4 run s", out);
  }
  const std::string wal = dir + "/s.wal";
  std::string bytes;
  {
    std::ifstream in(wal, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x40;
  {
    std::ofstream out(wal, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // A sharded server quarantines it on the name's home shard, and a
  // connection on ANY shard must get the structured verdict: resume and
  // re-open both answer `err journal-corrupt`, never `err internal`.
  NetServerConfig cfg;
  cfg.shards = 2;
  cfg.service.journal.dir = dir;
  cfg.service.journal.fsync = false;
  ServerFixture fx(cfg);
  ASSERT_EQ(fx.server.recovery_reports().size(), 1u);
  EXPECT_FALSE(fx.server.recovery_reports()[0].ok);

  NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fx.server.port()));
  Response r;
  ASSERT_TRUE(client.request("resume s", r));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.rfind("err journal-corrupt", 0), 0u) << r.status;
  ASSERT_TRUE(client.request("open s " + program, r));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.rfind("err journal-corrupt", 0), 0u) << r.status;
}

// ------------------------------------------------- fault-plan parsing

TEST(NetFaultPlan, ParsesSpecs) {
  const NetFaultPlan plan =
      NetFaultPlan::parse("seed=7,drop=0.25,ackloss=0.1,delay=0.5,maxdelay=80");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.drop_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.ack_loss_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan.delay_rate, 0.5);
  EXPECT_EQ(plan.max_delay_ms, 80u);
  EXPECT_TRUE(plan.enabled());
  EXPECT_FALSE(NetFaultPlan{}.enabled());

  EXPECT_THROW(NetFaultPlan::parse("drop=1.5"), ParseError);
  EXPECT_THROW(NetFaultPlan::parse("frobnicate=1"), ParseError);
  EXPECT_THROW(NetFaultPlan::parse("drop"), ParseError);
}

// --------------------------------- durable retry across server restarts

constexpr const char* kConsumeSource = R"((deftemplate item (slot v))
(deftemplate tally (slot n))
(defrule consume
  ?i <- (item (v ?x))
  ?t <- (tally (n ?c))
  =>
  (retract ?i)
  (retract ?t)
  (assert (tally (n (+ ?c ?x)))))
(deffacts init (tally (n 0))))";

std::string write_consume_program() {
  const std::string path = "/tmp/parulel_test_net_consume.clp";
  std::ofstream out(path);
  out << kConsumeSource;
  return path;
}

/// Journal directory for one test, wiped on entry.
std::string fresh_journal_dir(const char* tag) {
  const std::string dir = std::string("/tmp/parulel_net_journal_") + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

NetServerConfig durable_server_config(const std::string& dir,
                                      std::uint16_t port = 0) {
  NetServerConfig cfg;
  cfg.port = port;
  cfg.service.journal.dir = dir;
  cfg.service.journal.fsync = false;  // kill -9 semantics are enough here
  return cfg;
}

TEST(RetryRecovery, SurvivesServerRestartWithExactlyOnceReplay) {
  const std::string program = write_consume_program();
  const std::string dir = fresh_journal_dir("restart");

  auto first = std::make_unique<ServerFixture>(durable_server_config(dir));
  const std::uint16_t port = first->server.port();

  RetryConfig rcfg;
  rcfg.port = port;
  rcfg.max_attempts = 40;  // the restart window below needs patience
  rcfg.backoff_base_ms = 5;
  rcfg.backoff_max_ms = 100;
  RetryClient client(rcfg);
  Response r;
  ASSERT_TRUE(client.exec("open s " + program, r)) << client.error();
  ASSERT_TRUE(r.ok()) << r.status;
  ASSERT_TRUE(client.exec("assert s item 3", r));
  ASSERT_TRUE(client.exec("run s", r));
  ASSERT_TRUE(r.ok()) << r.status;

  // Crash the server (the fixture join is a hard stop from the client's
  // point of view: its connection dies), restart on the same port over
  // the same journal directory, and keep going — the client must
  // reconnect, resume, and the session must carry its state.
  first.reset();
  ServerFixture second(durable_server_config(dir, port));
  ASSERT_TRUE(second.start_ok);
  ASSERT_EQ(second.server.recovery_reports().size(), 1u);
  EXPECT_TRUE(second.server.recovery_reports()[0].ok)
      << second.server.recovery_reports()[0].error;

  ASSERT_TRUE(client.exec("assert s item 4", r)) << client.error();
  ASSERT_TRUE(r.ok()) << r.status;
  ASSERT_TRUE(client.exec("run s", r));
  ASSERT_TRUE(r.ok()) << r.status;
  ASSERT_TRUE(client.exec("query s tally", r));
  ASSERT_EQ(r.status, "ok query n=1");
  ASSERT_EQ(r.details.size(), 1u);
  EXPECT_NE(r.details[0].find("(n 7)"), std::string::npos) << r.details[0];
  EXPECT_GE(client.stats().reconnects, 1u);
  EXPECT_GE(client.stats().resumed, 1u);
  EXPECT_EQ(client.unacked(), 0u);
}

TEST(RetryRecovery, InjectedFaultsAreHealedByRetry) {
  const std::string program = write_consume_program();
  const std::string dir = fresh_journal_dir("faults");

  // Aggressive connection-killing faults: drops cut the connection
  // before execution, ack losses execute then eat the response. The
  // retry client must converge to the exact no-fault state anyway.
  NetServerConfig cfg = durable_server_config(dir);
  cfg.faults = NetFaultPlan::parse("seed=11,drop=0.15,ackloss=0.15");
  ServerFixture fx(cfg);

  RetryConfig rcfg;
  rcfg.port = fx.server.port();
  rcfg.max_attempts = 60;
  rcfg.backoff_base_ms = 1;
  rcfg.backoff_max_ms = 20;
  RetryClient client(rcfg);
  Response r;
  ASSERT_TRUE(client.exec("open s " + program, r)) << client.error();
  ASSERT_TRUE(r.ok()) << r.status;
  int expected = 0;
  for (int v : {3, 1, 4, 1, 5, 9, 2, 6}) {
    expected += v;
    ASSERT_TRUE(client.exec("assert s item " + std::to_string(v), r))
        << client.error();
    ASSERT_TRUE(r.ok()) << r.status;
    ASSERT_TRUE(client.exec("run s", r)) << client.error();
    ASSERT_TRUE(r.ok()) << r.status;
  }
  ASSERT_TRUE(client.exec("query s tally", r)) << client.error();
  ASSERT_EQ(r.status, "ok query n=1");
  ASSERT_EQ(r.details.size(), 1u);
  EXPECT_NE(r.details[0].find("(n " + std::to_string(expected) + ")"),
            std::string::npos)
      << r.details[0];
  EXPECT_EQ(client.unacked(), 0u);

  const NetStats stats = fx.server.stats_snapshot();
  EXPECT_GT(stats.fault_dropped, 0u) << "fault plan never fired";
}

// ------------------------------------ failover: bounded retry, replication

/// A loopback port with nothing listening on it (bind ephemeral, read
/// the number back, close — nothing re-binds it during the test).
std::uint16_t dead_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(RetryBackoff, FullJitterStaysInWindowAndSaturatesInsteadOfOverflowing) {
  RetryConfig cfg;
  cfg.backoff_base_ms = 100;
  cfg.backoff_max_ms = 1'000;
  cfg.seed = 42;
  RetryClient client(cfg);

  // Attempt k draws uniform in [0, min(base * 2^(k-1), max)]; sample
  // each window enough that a mis-sized window would show.
  const std::uint64_t windows[] = {100, 200, 400, 800, 1'000, 1'000};
  for (unsigned attempt = 1; attempt <= 6; ++attempt) {
    const std::uint64_t ceiling = windows[attempt - 1];
    std::uint64_t seen_max = 0;
    for (int i = 0; i < 400; ++i) {
      const std::uint64_t d = client.backoff_delay_ms(attempt);
      EXPECT_LE(d, ceiling) << "attempt=" << attempt;
      seen_max = std::max(seen_max, d);
    }
    // Full jitter uses the WHOLE window (not e.g. [ceiling/2, ceiling]).
    EXPECT_GT(seen_max, ceiling / 2) << "attempt=" << attempt;
  }

  // The exponent saturates: attempt 200 would shift 2^199 and wrap to a
  // near-zero delay (a tight retry hammer) if computed naively.
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(client.backoff_delay_ms(200), 1'000u);
  }

  // A base already past max clamps down rather than doubling away.
  RetryConfig big;
  big.backoff_base_ms = 50'000;
  big.backoff_max_ms = 300;
  RetryClient clamped(big);
  for (unsigned attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_LE(clamped.backoff_delay_ms(attempt), 300u);
  }
}

TEST(RetryFailover, DeadClusterYieldsTerminalGiveUp) {
  // Every endpoint refuses: exec() must rotate through the whole list,
  // burn its bounded attempt budget, and return false — the terminal
  // `err unavailable` path — instead of retrying forever.
  RetryConfig rcfg;
  rcfg.port = dead_port();
  rcfg.endpoints = {{"127.0.0.1", dead_port()}};
  rcfg.max_attempts = 4;
  rcfg.backoff_base_ms = 1;
  rcfg.backoff_max_ms = 5;
  RetryClient client(rcfg);
  Response r;
  EXPECT_FALSE(client.exec("hello", r));
  EXPECT_FALSE(client.error().empty());
  EXPECT_EQ(client.stats().giveups, 1u);
  // The cursor rotated: with 2 endpoints and 4 attempts each endpoint
  // was tried, and every failed dial advanced the cursor.
  EXPECT_GE(client.stats().failovers, 3u);
  EXPECT_EQ(client.stats().reconnects, 4u);
}

/// Read a whole file as bytes ("" when absent).
std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Poll `pred` for up to `ms` milliseconds.
bool eventually(std::uint64_t ms, const std::function<bool()>& pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

NetServerConfig replica_config(const std::string& dir,
                               std::uint16_t primary_port) {
  NetServerConfig cfg;
  cfg.service.journal.dir = dir;
  cfg.service.journal.fsync = false;
  cfg.replica_of = "127.0.0.1:" + std::to_string(primary_port);
  // Longer than a chaos cut heals (the applier redials within 200ms),
  // much shorter than the retry budget a failed-over client brings.
  cfg.promote_grace_ms = 600;
  return cfg;
}

TEST(Replication, ShippedJournalsAreByteIdenticalAndRemovable) {
  const std::string program = write_consume_program();
  const std::string pdir = fresh_journal_dir("ship_primary");
  const std::string rdir = fresh_journal_dir("ship_replica");

  NetServerConfig pcfg = durable_server_config(pdir);
  pcfg.service.journal.snapshot_every = 2;  // exercise rewrite shipping
  pcfg.repl_timeout_ms = 5'000;
  ServerFixture primary(pcfg);
  ServerFixture replica(replica_config(rdir, primary.server.port()));

  // The replica dials in and the channel comes up.
  ASSERT_TRUE(eventually(5'000, [&] {
    return primary.server.repl_stats_snapshot().replica_connects > 0;
  }));

  NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", primary.server.port()));
  Response r;
  ASSERT_TRUE(client.request("open s " + program, r));
  ASSERT_TRUE(r.ok()) << r.status;
  std::uint64_t req = 1;
  for (int v : {3, 1, 4, 1, 5}) {
    ASSERT_TRUE(client.request("@" + std::to_string(req++) + " assert s item " +
                                   std::to_string(v),
                               r));
    ASSERT_TRUE(r.ok()) << r.status;
    ASSERT_TRUE(client.request("@" + std::to_string(req++) + " run s", r));
    ASSERT_TRUE(r.ok()) << r.status;
    // Semi-sync: the `ok` above waited for the replica's ack, so the
    // backup's file is ALREADY byte-identical — through appends and
    // through the snapshot_every=2 whole-file rewrites.
    ASSERT_TRUE(eventually(5'000, [&] { return primary.server.repl_caught_up(); }));
    const std::string want = slurp(pdir + "/s.wal");
    ASSERT_FALSE(want.empty());
    EXPECT_EQ(slurp(rdir + "/s.wal"), want) << "after batch " << (req - 1) / 2;
  }

  const ReplStats ship = primary.server.repl_stats_snapshot();
  EXPECT_GT(ship.batches_shipped + ship.snapshots_shipped, 0u);
  EXPECT_GT(ship.sync_commits, 0u);
  EXPECT_EQ(ship.repl_degraded, 0u);
  const ReplStats apply = replica.server.repl_stats_snapshot();
  EXPECT_GT(apply.applied_batches + apply.applied_snapshots, 0u);
  EXPECT_EQ(apply.apply_errors, 0u);

  // A clean close unlinks BOTH copies: the replica must not resurrect a
  // session the client deliberately ended.
  ASSERT_TRUE(client.request("close s", r));
  ASSERT_TRUE(r.ok()) << r.status;
  EXPECT_TRUE(eventually(5'000, [&] { return slurp(rdir + "/s.wal").empty(); }));
}

// The chaos gate: kill the primary at a batch boundary, fail the client
// over to the hot standby, and require the exact state an uninterrupted
// run reaches — across replication-channel fault schedules (channel
// cuts force full resyncs, eaten acks force semi-sync degrades, delays
// stall frames). Zero duplicate, zero lost mutations.
TEST(Replication, KillPrimaryFailoverMatchesUninterruptedRun) {
  const std::string program = write_consume_program();
  const std::vector<int> load = {3, 1, 4, 1, 5, 9, 2, 6};

  // Drive (assert, run) pairs [from, to) through a RetryClient.
  auto drive_pairs = [&](RetryClient& client, std::size_t from,
                         std::size_t to) {
    for (std::size_t i = from; i < to; ++i) {
      Response r;
      const std::uint64_t req = 2 * i + 1;
      ASSERT_TRUE(client.exec("assert s item " + std::to_string(load[i]), r))
          << client.error();
      ASSERT_TRUE(r.ok()) << r.status << " req " << req;
      ASSERT_TRUE(client.exec("run s", r)) << client.error();
      ASSERT_TRUE(r.ok()) << r.status;
    }
  };

  // Detach-and-resume: close the driving client's connection, then read
  // the session's resume line from a fresh connection (fingerprint and
  // committed/acked watermarks).
  auto final_resume_line = [&](std::uint16_t port) {
    std::string status;
    EXPECT_TRUE(eventually(5'000, [&] {
      NetClient reader;
      if (!reader.connect("127.0.0.1", port)) return false;
      Response r;
      if (!reader.request("resume s", r)) return false;
      status = r.status;
      return r.ok();  // "attached" until the server reaps the old conn
    })) << status;
    return status;
  };

  auto strip_id = [](std::string line) {
    // `id=N` differs across servers (shared counter); everything else
    // must match: facts, committed, acked, fingerprint.
    const std::size_t at = line.find(" id=");
    if (at == std::string::npos) return line;
    const std::size_t end = line.find(' ', at + 1);
    line.erase(at, end - at);
    return line;
  };

  // Reference: the uninterrupted run on a lone durable server.
  std::string reference;
  {
    const std::string dir = fresh_journal_dir("failover_ref");
    ServerFixture fx(durable_server_config(dir));
    {
      RetryConfig rcfg;
      rcfg.port = fx.server.port();
      rcfg.backoff_base_ms = 1;
      RetryClient client(rcfg);
      Response r;
      ASSERT_TRUE(client.exec("open s " + program, r)) << client.error();
      ASSERT_TRUE(r.ok()) << r.status;
      drive_pairs(client, 0, load.size());
      ASSERT_EQ(client.unacked(), 0u);
    }  // close the driving connection so the session detaches
    reference = strip_id(final_resume_line(fx.server.port()));
  }
  ASSERT_NE(reference.find("fingerprint="), std::string::npos) << reference;

  const std::vector<std::string> chaos = {
      "",
      "seed=5,drop=0.2",
      "seed=9,ackloss=0.3",
      "seed=13,delay=0.3,maxdelay=10",
  };
  for (const std::string& spec : chaos) {
    for (const std::size_t kill : {2u, 5u}) {
      const std::string tag =
          "failover_" + std::to_string(kill) + "_" +
          std::to_string(std::hash<std::string>{}(spec) % 1000);
      const std::string pdir = fresh_journal_dir((tag + "_p").c_str());
      const std::string rdir = fresh_journal_dir((tag + "_r").c_str());

      NetServerConfig pcfg = durable_server_config(pdir);
      pcfg.repl_timeout_ms = 200;  // an eaten ack degrades quickly
      if (!spec.empty()) pcfg.faults = NetFaultPlan::parse(spec);
      auto primary = std::make_unique<ServerFixture>(pcfg);
      ASSERT_TRUE(primary->start_ok);
      ServerFixture replica(
          replica_config(rdir, primary->server.port()));
      ASSERT_TRUE(replica.start_ok);

      {
        RetryConfig rcfg;
        rcfg.port = primary->server.port();
        rcfg.endpoints = {{"127.0.0.1", replica.server.port()}};
        rcfg.max_attempts = 60;  // client-facing chaos rides the same plan
        rcfg.backoff_base_ms = 1;
        rcfg.backoff_max_ms = 20;
        RetryClient client(rcfg);
        Response r;
        ASSERT_TRUE(client.exec("open s " + program, r)) << client.error();
        ASSERT_TRUE(r.ok()) << r.status;
        drive_pairs(client, 0, kill);

        // The kill -9 contract needs the standby current at the
        // boundary: wait until every shipped frame is acked (chaos cuts
        // heal via reconnect + full resync), then pull the plug without
        // drain niceties toward the client.
        // Byte equality is the contract the kill relies on; caught_up
        // alone would hang on an ackloss leg whose LAST ack was eaten
        // (cumulative acks only heal when another frame flows).
        ASSERT_TRUE(eventually(10'000, [&] {
          const std::string p = slurp(pdir + "/s.wal");
          return !p.empty() && p == slurp(rdir + "/s.wal");
        })) << "spec=" << spec << " kill=" << kill;
        primary.reset();

        // Finish the script: the client fails over to the replica, which
        // promotes `s` from its shipped journal on resume.
        drive_pairs(client, kill, load.size());
        EXPECT_EQ(client.unacked(), 0u);
        EXPECT_GE(client.stats().failovers, 1u);
        EXPECT_GE(client.stats().resumed, 1u);
      }  // close the driving connection so the session detaches
      const std::string line =
          strip_id(final_resume_line(replica.server.port()));
      EXPECT_EQ(line, reference) << "spec=" << spec << " kill=" << kill;
      const ReplStats apply = replica.server.repl_stats_snapshot();
      EXPECT_EQ(apply.apply_errors, 0u) << "spec=" << spec;
    }
  }
}

// --------------------------------------------------- client timeouts

TEST(NetTimeouts, SilentServerTripsTheIoTimeout) {
  // A listener that accepts and then says nothing: the handshake must
  // fail with a timeout, not hang.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  NetClient::Options opts;
  opts.connect_timeout_ms = 1'000;
  opts.io_timeout_ms = 100;
  NetClient client(opts);
  EXPECT_FALSE(client.connect("127.0.0.1", ntohs(addr.sin_port)));
  EXPECT_TRUE(client.timed_out()) << client.error();
  ::close(lfd);
}

}  // namespace
}  // namespace parulel::net
