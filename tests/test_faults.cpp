// Unit and equivalence tests: fault injection, reliable routing, and
// checkpoint/recovery in the simulated distributed engine.
//
// The load-bearing property (the tentpole invariant): for any fault
// plan that eventually lets every message through, the run converges to
// the fault-free fixpoint — global_fingerprint() is unchanged by loss,
// duplication, delay, and site crashes. The sweep below checks it
// across seeds x site counts x loss rates, alongside the counter
// reconciliation invariants documented on FaultStats.
#include <gtest/gtest.h>

#include <memory>

#include "distrib/checkpoint.hpp"
#include "distrib/dist_engine.hpp"
#include "distrib/faults.hpp"
#include "engine/par_engine.hpp"
#include "support/error.hpp"
#include "workloads/workloads.hpp"

namespace parulel {
namespace {

// Tests would hang on a routing bug that never quiesces; a finite cap
// turns that into a fast CycleLimit failure instead.
constexpr std::uint64_t kTestMaxCycles = 10'000;

struct DistOutcome {
  std::uint64_t fingerprint = 0;
  DistStats stats;
};

DistOutcome run_dist(const Program& program,
                     const std::unordered_map<std::string, std::string>& part,
                     unsigned sites, const FaultPlan& plan,
                     std::uint64_t checkpoint_every) {
  DistConfig cfg;
  cfg.sites = sites;
  cfg.max_cycles = kTestMaxCycles;
  cfg.faults = plan;
  cfg.checkpoint_every = checkpoint_every;
  PartitionScheme scheme(program, part);
  DistributedEngine dist(program, std::move(scheme), cfg);
  dist.assert_initial_facts();
  DistOutcome out;
  out.stats = dist.run();
  out.fingerprint = dist.global_fingerprint();
  return out;
}

void expect_counters_reconcile(const FaultStats& f) {
  EXPECT_EQ(f.sent, f.delivered + f.dropped)
      << "every transmission attempt must resolve";
  EXPECT_EQ(f.delivered, f.applied + f.dup_suppressed + f.wiped)
      << "every delivery must be applied, suppressed, or crash-wiped";
}

// ------------------------------------------------------- FaultPlan spec

TEST(FaultPlan, ParsesFullSpec) {
  const FaultPlan plan = FaultPlan::parse(
      "loss=0.2,dup=0.05,delay=0.1,maxdelay=4,seed=7,crash=1@5+4;0@9+2");
  EXPECT_DOUBLE_EQ(plan.loss_rate, 0.2);
  EXPECT_DOUBLE_EQ(plan.duplicate_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan.delay_rate, 0.1);
  EXPECT_EQ(plan.max_delay_cycles, 4u);
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].site, 1u);
  EXPECT_EQ(plan.crashes[0].at_cycle, 5u);
  EXPECT_EQ(plan.crashes[0].down_cycles, 4u);
  EXPECT_EQ(plan.crashes[1].site, 0u);
  EXPECT_TRUE(plan.enabled());
  EXPECT_TRUE(plan.any_network_faults());
}

TEST(FaultPlan, EmptySpecIsDisabled) {
  const FaultPlan plan = FaultPlan::parse("");
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(plan.any_network_faults());
}

TEST(FaultPlan, CrashOnlyPlanIsEnabledButNotNetwork) {
  const FaultPlan plan = FaultPlan::parse("crash=0@3+2");
  EXPECT_TRUE(plan.enabled());
  EXPECT_FALSE(plan.any_network_faults());
}

TEST(FaultPlan, MalformedSpecsThrow) {
  EXPECT_THROW(FaultPlan::parse("loss"), ParseError);
  EXPECT_THROW(FaultPlan::parse("loss=1.0"), ParseError);   // rate must be < 1
  EXPECT_THROW(FaultPlan::parse("loss=-0.1"), ParseError);
  EXPECT_THROW(FaultPlan::parse("loss=abc"), ParseError);
  EXPECT_THROW(FaultPlan::parse("turbo=1"), ParseError);    // unknown key
  EXPECT_THROW(FaultPlan::parse("maxdelay=0"), ParseError);
  EXPECT_THROW(FaultPlan::parse("crash=1"), ParseError);    // missing @ +
  EXPECT_THROW(FaultPlan::parse("crash=1@5"), ParseError);
  EXPECT_THROW(FaultPlan::parse("crash=1@5+0"), ParseError);  // no downtime
}

TEST(FaultInjector, SameSeedSameVerdicts) {
  FaultPlan plan;
  plan.seed = 42;
  plan.loss_rate = 0.3;
  plan.duplicate_rate = 0.2;
  plan.delay_rate = 0.2;
  FaultInjector a(plan), b(plan);
  for (int i = 0; i < 1000; ++i) {
    const FaultVerdict va = a.roll(), vb = b.roll();
    ASSERT_EQ(va.drop, vb.drop) << "roll " << i;
    ASSERT_EQ(va.duplicate, vb.duplicate) << "roll " << i;
    ASSERT_EQ(va.delay, vb.delay) << "roll " << i;
  }
  EXPECT_EQ(a.rolls(), 1000u);
}

TEST(FaultInjector, RatesRoughlyRespected) {
  FaultPlan plan;
  plan.seed = 9;
  plan.loss_rate = 0.25;
  FaultInjector inj(plan);
  int drops = 0;
  for (int i = 0; i < 4000; ++i) {
    if (inj.roll().drop) ++drops;
  }
  EXPECT_GT(drops, 4000 * 0.15);
  EXPECT_LT(drops, 4000 * 0.35);
}

// ------------------------------------------------------ checkpoint state

TEST(AppliedSeqs, InOrderAdvancesFloorWithoutSparse) {
  AppliedSeqs s;
  for (std::uint64_t seq = 1; seq <= 100; ++seq) s.add(seq);
  EXPECT_EQ(s.floor, 100u);
  EXPECT_TRUE(s.sparse.empty());
  EXPECT_TRUE(s.contains(57));
  EXPECT_FALSE(s.contains(101));
}

TEST(AppliedSeqs, OutOfOrderCompressesOnGapFill) {
  AppliedSeqs s;
  s.add(2);
  s.add(4);
  s.add(3);
  EXPECT_EQ(s.floor, 0u);  // 1 still missing
  EXPECT_EQ(s.sparse.size(), 3u);
  s.add(1);  // gap fills; the whole prefix collapses into the floor
  EXPECT_EQ(s.floor, 4u);
  EXPECT_TRUE(s.sparse.empty());
  s.add(4);  // duplicate add is a no-op
  EXPECT_EQ(s.floor, 4u);
}

TEST(Checkpoint, RoundtripPreservesContent) {
  const Program p = parse_program(R"(
    (deftemplate item (slot id) (slot tag))
    (deffacts f (item (id 1) (tag a)) (item (id 2) (tag b))))");
  WorkingMemory wm(p.schema);
  for (const auto& fact : p.initial_facts) {
    wm.assert_fact(fact.tmpl, fact.slots);
  }
  wm.drain_delta();  // settle, as a mid-run snapshot would be
  const FactId doomed = *wm.find(p.initial_facts[0].tmpl,
                                 p.initial_facts[0].slots);
  wm.retract(doomed);

  std::vector<ChannelRecvState> recv(2);
  recv[1].by_epoch[1].add(1);
  recv[1].by_epoch[1].add(2);
  const SiteCheckpoint cp = capture_checkpoint(5, wm, recv);
  EXPECT_EQ(cp.cycle, 5u);
  EXPECT_EQ(cp.facts.size(), 1u);  // the retracted fact is not captured

  const auto restored = restore_working_memory(p.schema, cp);
  EXPECT_EQ(restored->alive_count(), 1u);
  EXPECT_EQ(restored->content_fingerprint(), wm.content_fingerprint());
  EXPECT_TRUE(cp.recv[1].by_epoch.at(1).contains(2));
}

// --------------------------------------------------- termination reason

TEST(TerminationReason, NamesAreStable) {
  EXPECT_STREQ(termination_name(TerminationReason::Quiescent), "quiescent");
  EXPECT_STREQ(termination_name(TerminationReason::Halted), "halted");
  EXPECT_STREQ(termination_name(TerminationReason::CycleLimit),
               "cycle_limit");
}

TEST(TerminationReason, ParallelEngineReportsCycleLimit) {
  const auto w = workloads::make_tc(12, 30, 5);
  const Program p = parse_program(w.source);
  EngineConfig cfg;
  cfg.matcher = MatcherKind::ParallelTreat;
  cfg.max_cycles = 1;  // transitive closure needs more than one cycle
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.termination, TerminationReason::CycleLimit);
  EXPECT_FALSE(stats.quiescent);
}

TEST(TerminationReason, ParallelEngineReportsQuiescent) {
  const auto w = workloads::make_tc(12, 30, 5);
  const Program p = parse_program(w.source);
  EngineConfig cfg;
  cfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.termination, TerminationReason::Quiescent);
}

TEST(TerminationReason, DistributedEngineReportsCycleLimit) {
  const auto w = workloads::make_tc(12, 30, 5);
  const Program p = parse_program(w.source);
  PartitionScheme scheme(p, w.partition);
  DistConfig cfg;
  cfg.sites = 2;
  cfg.max_cycles = 1;
  DistributedEngine dist(p, std::move(scheme), cfg);
  dist.assert_initial_facts();
  const DistStats stats = dist.run();
  EXPECT_EQ(stats.run.termination, TerminationReason::CycleLimit);
}

// ----------------------------------------------- fault-free reliability

TEST(ReliableRouting, NoFaultsMatchesFastPath) {
  // checkpoint_every alone flips routing onto the reliable layer; with
  // no injected faults it must reproduce the fast path bit for bit.
  const auto w = workloads::make_tc(20, 48, 3);
  const Program p = parse_program(w.source);
  const DistOutcome plain = run_dist(p, w.partition, 3, FaultPlan{}, 0);
  ASSERT_TRUE(plain.stats.run.quiescent);
  EXPECT_EQ(plain.stats.faults.sent, 0u);  // fast path: no fault accounting

  const DistOutcome reliable = run_dist(p, w.partition, 3, FaultPlan{}, 2);
  EXPECT_TRUE(reliable.stats.run.quiescent);
  EXPECT_EQ(reliable.fingerprint, plain.fingerprint);
  EXPECT_GT(reliable.stats.faults.checkpoints, 0u);
  EXPECT_EQ(reliable.stats.faults.dropped, 0u);
  EXPECT_EQ(reliable.stats.faults.retries, 0u);
  EXPECT_EQ(reliable.stats.messages, plain.stats.messages);
  expect_counters_reconcile(reliable.stats.faults);
}

// --------------------------------------------------- equivalence sweeps

TEST(FaultEquivalence, LossSweepConvergesToFaultFreeFingerprint) {
  for (const unsigned sites : {2u, 4u}) {
    const auto w = workloads::make_tc(20, 48, 13);
    const Program p = parse_program(w.source);
    const DistOutcome baseline =
        run_dist(p, w.partition, sites, FaultPlan{}, 0);
    ASSERT_TRUE(baseline.stats.run.quiescent);

    for (const std::uint64_t seed : {3u, 11u, 29u}) {
      for (const double loss : {0.1, 0.3}) {
        FaultPlan plan;
        plan.seed = seed;
        plan.loss_rate = loss;
        const DistOutcome faulty = run_dist(p, w.partition, sites, plan, 0);
        SCOPED_TRACE("sites=" + std::to_string(sites) +
                     " seed=" + std::to_string(seed) +
                     " loss=" + std::to_string(loss));
        EXPECT_TRUE(faulty.stats.run.quiescent);
        EXPECT_EQ(faulty.fingerprint, baseline.fingerprint);
        expect_counters_reconcile(faulty.stats.faults);
        if (faulty.stats.faults.dropped > 0) {
          EXPECT_GT(faulty.stats.faults.retries, 0u)
              << "drops must trigger retransmission";
        }
      }
    }
  }
}

TEST(FaultEquivalence, DuplicationAndDelayAreAbsorbed) {
  const auto w = workloads::make_tc(20, 48, 17);
  const Program p = parse_program(w.source);
  const DistOutcome baseline = run_dist(p, w.partition, 3, FaultPlan{}, 0);
  ASSERT_TRUE(baseline.stats.run.quiescent);

  for (const std::uint64_t seed : {3u, 11u, 29u}) {
    FaultPlan plan;
    plan.seed = seed;
    plan.loss_rate = 0.1;
    plan.duplicate_rate = 0.2;
    plan.delay_rate = 0.2;
    plan.max_delay_cycles = 3;
    const DistOutcome faulty = run_dist(p, w.partition, 3, plan, 0);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    EXPECT_TRUE(faulty.stats.run.quiescent);
    EXPECT_EQ(faulty.fingerprint, baseline.fingerprint);
    expect_counters_reconcile(faulty.stats.faults);
    if (faulty.stats.faults.delayed > 0 ||
        faulty.stats.faults.dup_suppressed > 0) {
      // Duplicates were really injected and really suppressed — the
      // working memory applied each op exactly once.
      EXPECT_EQ(faulty.stats.faults.applied,
                faulty.stats.faults.delivered -
                    faulty.stats.faults.dup_suppressed -
                    faulty.stats.faults.wiped);
    }
  }
}

// ------------------------------------------------------ crash recovery

TEST(CrashRecovery, SiteCrashAndRestoreConvergesWithLoss) {
  const auto w = workloads::make_tc(20, 48, 13);
  const Program p = parse_program(w.source);
  const DistOutcome baseline = run_dist(p, w.partition, 3, FaultPlan{}, 0);
  ASSERT_TRUE(baseline.stats.run.quiescent);

  FaultPlan plan;
  plan.seed = 7;
  plan.loss_rate = 0.1;
  plan.crashes.push_back({.site = 1, .at_cycle = 2, .down_cycles = 3});
  const DistOutcome faulty = run_dist(p, w.partition, 3, plan, 2);
  EXPECT_TRUE(faulty.stats.run.quiescent);
  EXPECT_EQ(faulty.fingerprint, baseline.fingerprint);
  EXPECT_EQ(faulty.stats.faults.crashes, 1u);
  EXPECT_EQ(faulty.stats.faults.restores, 1u);
  EXPECT_GT(faulty.stats.faults.checkpoints, 0u);
  expect_counters_reconcile(faulty.stats.faults);
}

TEST(CrashRecovery, CrashBeforeFirstPeriodicCheckpoint) {
  // A site that dies at cycle 0 restarts from the initial snapshot and
  // must re-derive everything it lost.
  const auto w = workloads::make_tc(16, 40, 23);
  const Program p = parse_program(w.source);
  const DistOutcome baseline = run_dist(p, w.partition, 2, FaultPlan{}, 0);
  ASSERT_TRUE(baseline.stats.run.quiescent);

  FaultPlan plan;
  plan.crashes.push_back({.site = 0, .at_cycle = 1, .down_cycles = 2});
  const DistOutcome faulty = run_dist(p, w.partition, 2, plan, 0);
  EXPECT_TRUE(faulty.stats.run.quiescent);
  EXPECT_EQ(faulty.fingerprint, baseline.fingerprint);
  EXPECT_EQ(faulty.stats.faults.restores, 1u);
  expect_counters_reconcile(faulty.stats.faults);
}

TEST(CrashRecovery, RepeatedCrashesOfDifferentSites) {
  const auto w = workloads::make_tc(20, 48, 29);
  const Program p = parse_program(w.source);
  const DistOutcome baseline = run_dist(p, w.partition, 4, FaultPlan{}, 0);
  ASSERT_TRUE(baseline.stats.run.quiescent);

  FaultPlan plan;
  plan.seed = 11;
  plan.loss_rate = 0.05;
  plan.crashes.push_back({.site = 0, .at_cycle = 1, .down_cycles = 2});
  plan.crashes.push_back({.site = 2, .at_cycle = 3, .down_cycles = 2});
  const DistOutcome faulty = run_dist(p, w.partition, 4, plan, 2);
  EXPECT_TRUE(faulty.stats.run.quiescent);
  EXPECT_EQ(faulty.fingerprint, baseline.fingerprint);
  EXPECT_EQ(faulty.stats.faults.crashes, 2u);
  EXPECT_EQ(faulty.stats.faults.restores, 2u);
  expect_counters_reconcile(faulty.stats.faults);
}

TEST(CrashRecovery, OutOfRangeCrashSiteRefused) {
  const auto w = workloads::make_tc(12, 30, 5);
  const Program p = parse_program(w.source);
  PartitionScheme scheme(p, w.partition);
  DistConfig cfg;
  cfg.sites = 2;
  cfg.faults.crashes.push_back({.site = 5, .at_cycle = 1, .down_cycles = 1});
  EXPECT_THROW(DistributedEngine(p, std::move(scheme), cfg), RuntimeError);
}

// ------------------------------------------- meta-rules under faults

TEST(FaultEquivalence, MetaRuleWorkloadSurvivesFaults) {
  // The meta-stress waltz: per-site redaction fixpoints must still land
  // on the shared-memory result when the network misbehaves.
  const auto w = workloads::make_waltz(3, /*prebuilt_witnesses=*/false);
  const Program p = parse_program(w.source);

  EngineConfig shared_cfg;
  shared_cfg.threads = 2;
  shared_cfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine shared(p, shared_cfg);
  shared.assert_initial_facts();
  shared.run();

  FaultPlan plan;
  plan.seed = 19;
  plan.loss_rate = 0.15;
  plan.duplicate_rate = 0.1;
  const DistOutcome faulty = run_dist(p, w.partition, 3, plan, 3);
  EXPECT_TRUE(faulty.stats.run.quiescent);
  EXPECT_EQ(faulty.fingerprint, shared.wm().content_fingerprint());
  EXPECT_GT(faulty.stats.run.total_redactions, 0u);
  expect_counters_reconcile(faulty.stats.faults);
}

}  // namespace
}  // namespace parulel
