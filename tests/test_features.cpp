// Tests: firing log, stratified salience, state dump/restore, and
// end-to-end (exists ...) behaviour in the engines.
#include <gtest/gtest.h>

#include "engine/par_engine.hpp"
#include "engine/seq_engine.hpp"
#include "lang/printer.hpp"

namespace parulel {
namespace {

TEST(FiringLog, SequentialRecordsEveryFiring) {
  const Program p = parse_program(R"(
    (deftemplate n (slot v))
    (defrule bump ?f <- (n (v ?x)) (test (< ?x 3))
      => (retract ?f) (assert (n (v (+ ?x 1)))))
    (deffacts f (n (v 0))))");
  std::vector<FiringRecord> log;
  EngineConfig cfg;
  cfg.firing_log = &log;
  SequentialEngine engine(p, cfg);
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  ASSERT_EQ(log.size(), stats.total_firings);
  ASSERT_EQ(log.size(), 3u);
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].cycle, i);
    EXPECT_EQ(log[i].rule, 0u);
    EXPECT_EQ(log[i].facts.size(), 1u);
  }
}

TEST(FiringLog, ParallelRecordsInDeterministicOrder) {
  const Program p = parse_program(R"(
    (deftemplate in (slot v))
    (deftemplate out (slot v))
    (defrule copy (in (v ?x)) => (assert (out (v ?x))))
    (deffacts f (in (v 1)) (in (v 2)) (in (v 3))))");
  auto run = [&]() {
    std::vector<FiringRecord> log;
    EngineConfig cfg;
    cfg.threads = 4;
    cfg.matcher = MatcherKind::ParallelTreat;
    cfg.firing_log = &log;
    ParallelEngine engine(p, cfg);
    engine.assert_initial_facts();
    engine.run();
    return log;
  };
  const auto log1 = run();
  const auto log2 = run();
  ASSERT_EQ(log1.size(), 3u);
  ASSERT_EQ(log1.size(), log2.size());
  for (std::size_t i = 0; i < log1.size(); ++i) {
    EXPECT_EQ(log1[i].facts, log2[i].facts);
    EXPECT_EQ(log1[i].cycle, 0u);
  }
}

TEST(StratifiedSalience, ParallelFiresOneStratumPerCycle) {
  const Program p = parse_program(R"(
    (deftemplate t (slot v))
    (deftemplate hi (slot v))
    (deftemplate lo (slot v))
    (defrule high (declare (salience 10)) (t (v ?x))
      => (assert (hi (v ?x))))
    (defrule low (declare (salience 0)) (t (v ?x))
      => (assert (lo (v ?x))))
    (deffacts f (t (v 1)) (t (v 2))))");
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.matcher = MatcherKind::ParallelTreat;
  cfg.stratified_salience = true;
  cfg.trace_cycles = true;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  // Cycle 0: only the two `high` instantiations; cycle 1: the `low` ones.
  ASSERT_GE(stats.per_cycle.size(), 2u);
  EXPECT_EQ(stats.per_cycle[0].fired, 2u);
  EXPECT_EQ(stats.per_cycle[1].fired, 2u);
  EXPECT_EQ(stats.total_firings, 4u);

  // Without stratification, all four fire at once.
  cfg.stratified_salience = false;
  ParallelEngine flat(p, cfg);
  flat.assert_initial_facts();
  const RunStats flat_stats = flat.run();
  EXPECT_EQ(flat_stats.per_cycle[0].fired, 4u);
}

TEST(DumpState, RoundTripsWorkingMemory) {
  const Program p = parse_program(R"(
    (deftemplate item (slot name) (slot qty) (slot price))
    (deffacts f
      (item (name widget) (qty 3) (price 2.5))
      (item (name gadget) (qty 7) (price 10))))");
  SequentialEngine engine(p, {});
  engine.assert_initial_facts();

  const std::string text = dump_state(engine.wm(), *p.symbols, "saved");
  const Program restored = parse_program(text);
  SequentialEngine engine2(restored, {});
  engine2.assert_initial_facts();

  EXPECT_EQ(engine.wm().content_fingerprint(),
            engine2.wm().content_fingerprint());
}

TEST(DumpState, QuotesAwkwardSymbols) {
  const Program p = parse_program(R"clp(
    (deftemplate msg (slot text))
    (deffacts f (msg (text "hello world (tricky)"))))clp");
  SequentialEngine engine(p, {});
  engine.assert_initial_facts();
  const std::string text = dump_state(engine.wm(), *p.symbols);
  // Must re-parse and preserve the symbol.
  const Program restored = parse_program(text);
  SequentialEngine engine2(restored, {});
  engine2.assert_initial_facts();
  EXPECT_EQ(engine.wm().content_fingerprint(),
            engine2.wm().content_fingerprint());
}

TEST(DumpState, SkipsTombstones) {
  const Program p = parse_program(R"(
    (deftemplate n (slot v))
    (deffacts f (n (v 1)) (n (v 2))))");
  SequentialEngine engine(p, {});
  engine.assert_initial_facts();
  auto& wm = engine.wm();
  wm.retract(*wm.find(*p.schema.find(p.symbols->intern("n")),
                      {Value::integer(1)}));
  const std::string text = dump_state(wm, *p.symbols);
  EXPECT_EQ(text.find("(v 1)"), std::string::npos);
  EXPECT_NE(text.find("(v 2)"), std::string::npos);
}

TEST(Exists, EndToEndGatingInParallelEngine) {
  // Work items process only while a worker is on shift.
  const Program p = parse_program(R"(
    (deftemplate job (slot id))
    (deftemplate shift (slot worker))
    (deftemplate done (slot id))
    (defrule process
      ?j <- (job (id ?i))
      (exists (shift (worker ?w)))
      =>
      (retract ?j)
      (assert (done (id ?i))))
    (deffacts f (job (id 1)) (job (id 2))))");
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  RunStats stats = engine.run();
  EXPECT_EQ(stats.total_firings, 0u);  // nobody on shift

  // Clock a worker in: both jobs process in one cycle.
  const TemplateId shift_t = *p.schema.find(p.symbols->intern("shift"));
  engine.wm().assert_fact(shift_t,
                          {Value::symbol(p.symbols->intern("ada"))});
  stats = engine.run();
  EXPECT_EQ(stats.total_firings, 2u);
  const TemplateId done_t = *p.schema.find(p.symbols->intern("done"));
  EXPECT_EQ(engine.wm().extent(done_t).size(), 2u);
}

TEST(Exists, ParsesAndCompiles) {
  const Program p = parse_program(R"(
    (deftemplate a (slot v))
    (deftemplate b (slot v))
    (defrule r (a (v ?x)) (exists (b (v ?x))) (not (b (v 99))) => (halt)))");
  ASSERT_EQ(p.rules[0].negatives.size(), 2u);
  EXPECT_TRUE(p.rules[0].negatives[0].exists);
  EXPECT_FALSE(p.rules[0].negatives[1].exists);
}

}  // namespace
}  // namespace parulel
