// Unit tests: reification and the meta-rule redaction fixpoint.
#include <gtest/gtest.h>

#include <memory>

#include "match/treat.hpp"
#include "meta/meta_engine.hpp"
#include "meta/reify.hpp"

namespace parulel {
namespace {

/// Fixture: loads a program, asserts deffacts, matches once, and exposes
/// the eligible conflict set.
class MetaTest : public ::testing::Test {
 protected:
  void load(const std::string& source) {
    program_ = parse_program(source);
    wm_ = std::make_unique<WorkingMemory>(program_.schema);
    matcher_ = std::make_unique<TreatMatcher>(
        program_.rules, program_.alphas, program_.schema.size());
    for (const auto& fact : program_.initial_facts) {
      wm_->assert_fact(fact.tmpl, fact.slots);
    }
    matcher_->apply_delta(*wm_, wm_->drain_delta());
  }

  std::vector<InstId> eligible() {
    return matcher_->conflict_set().alive_ids();
  }

  Program program_;
  std::unique_ptr<WorkingMemory> wm_;
  std::unique_ptr<TreatMatcher> matcher_;
};

TEST_F(MetaTest, ReifyProducesOneMetaFactPerInstantiation) {
  load(R"(
    (deftemplate item (slot v))
    (defrule take (item (v ?x)) => (halt))
    (deffacts f (item (v 10)) (item (v 20))))");
  WorkingMemory meta_wm(program_.meta_schema);
  const auto ids = eligible();
  const auto meta_ids = reify_conflict_set(program_, *wm_,
                                           matcher_->conflict_set(), ids,
                                           meta_wm);
  ASSERT_EQ(meta_ids.size(), 2u);
  EXPECT_EQ(meta_wm.alive_count(), 2u);
  // Slots: (id, x) with id = instantiation id and x = bound value.
  const FactView f0 = meta_wm.view(meta_ids[0]);
  EXPECT_EQ(f0.slot(0), Value::integer(static_cast<std::int64_t>(ids[0])));
  EXPECT_TRUE(f0.slot(1) == Value::integer(10) ||
              f0.slot(1) == Value::integer(20));
}

TEST_F(MetaTest, NoMetaRulesMeansInactive) {
  load(R"(
    (deftemplate item (slot v))
    (defrule take (item (v ?x)) => (halt))
    (deffacts f (item (v 1))))");
  MetaEngine meta(program_);
  EXPECT_FALSE(meta.active());
  const auto outcome = meta.run(*wm_, matcher_->conflict_set(), eligible());
  EXPECT_TRUE(outcome.redacted.empty());
}

TEST_F(MetaTest, PairwiseRedactionKeepsLowestId) {
  load(R"(
    (deftemplate item (slot v))
    (defrule take (item (v ?x)) => (halt))
    (defmetarule pick-one
      (inst-take (id ?i))
      (inst-take (id ?j))
      (test (< ?i ?j))
      =>
      (redact ?j))
    (deffacts f (item (v 1)) (item (v 2)) (item (v 3))))");
  MetaEngine meta(program_);
  const auto ids = eligible();
  const auto outcome = meta.run(*wm_, matcher_->conflict_set(), ids);
  // All but the lowest instantiation id are redacted.
  ASSERT_EQ(outcome.redacted.size(), 2u);
  EXPECT_EQ(outcome.redacted[0], ids[1]);
  EXPECT_EQ(outcome.redacted[1], ids[2]);
}

TEST_F(MetaTest, RedactionJoinsOnBindings) {
  load(R"(
    (deftemplate claim (slot who) (slot what))
    (defrule grab (claim (who ?w) (what ?r)) => (halt))
    ; two grabs of the same resource conflict: keep the lower id
    (defmetarule exclusive
      (inst-grab (id ?i) (r ?x))
      (inst-grab (id ?j) (r ?x))
      (test (< ?i ?j))
      =>
      (redact ?j))
    (deffacts f
      (claim (who 1) (what 100))
      (claim (who 2) (what 100))
      (claim (who 3) (what 200))))");
  MetaEngine meta(program_);
  const auto outcome = meta.run(*wm_, matcher_->conflict_set(), eligible());
  // Only the second claim on resource 100 is redacted.
  EXPECT_EQ(outcome.redacted.size(), 1u);
}

TEST_F(MetaTest, FixpointCascades) {
  // Chain redaction: redact j only if i survives. With ids 0 < 1 < 2,
  // round 1 redacts 1 (by 0) and 2 (by 1). But once 1 is redacted its
  // meta fact is withdrawn — the fixpoint still keeps 2 redacted from
  // round 1. This pins down the semantics: redactions are not undone.
  load(R"(
    (deftemplate item (slot v))
    (defrule take (item (v ?x)) => (halt))
    (defmetarule chain
      (inst-take (id ?i) (x ?a))
      (inst-take (id ?j) (x ?b))
      (test (== ?j (+ ?i 1)))
      =>
      (redact ?j))
    (deffacts f (item (v 1)) (item (v 2)) (item (v 3))))");
  MetaEngine meta(program_);
  const auto outcome = meta.run(*wm_, matcher_->conflict_set(), eligible());
  EXPECT_EQ(outcome.redacted.size(), 2u);
}

TEST_F(MetaTest, RedactedInstantiationCannotJustifyLaterRedactions) {
  // "guard" redacts anything it can see; "witness" redacts guard's
  // target first. Tests that rounds only use surviving meta facts.
  load(R"(
    (deftemplate a (slot v))
    (deftemplate b (slot v))
    (defrule ra (a (v ?x)) => (halt))
    (defrule rb (b (v ?x)) => (halt))
    ; every rb instantiation redacts every ra instantiation
    (defmetarule kill-a
      (inst-rb (id ?i))
      (inst-ra (id ?j))
      =>
      (redact ?j))
    (deffacts f (a (v 1)) (b (v 2))))");
  MetaEngine meta(program_);
  const auto ids = eligible();
  ASSERT_EQ(ids.size(), 2u);
  const auto outcome = meta.run(*wm_, matcher_->conflict_set(), ids);
  // Exactly the ra instantiation is redacted; rb survives.
  ASSERT_EQ(outcome.redacted.size(), 1u);
}

TEST_F(MetaTest, MetaFiringsAndRoundsCounted) {
  load(R"(
    (deftemplate item (slot v))
    (defrule take (item (v ?x)) => (halt))
    (defmetarule pick-one
      (inst-take (id ?i))
      (inst-take (id ?j))
      (test (< ?i ?j))
      =>
      (redact ?j))
    (deffacts f (item (v 1)) (item (v 2))))");
  MetaEngine meta(program_);
  const auto outcome = meta.run(*wm_, matcher_->conflict_set(), eligible());
  EXPECT_GE(outcome.meta_firings, 1u);
  EXPECT_GE(outcome.rounds, 1u);
  EXPECT_EQ(outcome.redacted.size(), 1u);
}

TEST_F(MetaTest, SelfRedactionIsAllowedAndTerminates) {
  // A meta-rule that redacts every instantiation, including implicitly
  // cutting its own justification next round. Must terminate with all
  // object instantiations redacted.
  load(R"(
    (deftemplate item (slot v))
    (defrule take (item (v ?x)) => (halt))
    (defmetarule nuke
      (inst-take (id ?i))
      =>
      (redact ?i))
    (deffacts f (item (v 1)) (item (v 2)) (item (v 3))))");
  MetaEngine meta(program_);
  const auto outcome = meta.run(*wm_, matcher_->conflict_set(), eligible());
  EXPECT_EQ(outcome.redacted.size(), 3u);
}

TEST_F(MetaTest, RedactOfUnknownIdIsIgnored) {
  load(R"(
    (deftemplate item (slot v))
    (defrule take (item (v ?x)) => (halt))
    (defmetarule wild
      (inst-take (id ?i))
      =>
      (redact (+ ?i 1000)))
    (deffacts f (item (v 1))))");
  MetaEngine meta(program_);
  const auto outcome = meta.run(*wm_, matcher_->conflict_set(), eligible());
  EXPECT_TRUE(outcome.redacted.empty());
}

}  // namespace
}  // namespace parulel
