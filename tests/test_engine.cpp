// Unit tests: sequential (OPS5-style) and parallel (PARULEL) engines.
#include <gtest/gtest.h>

#include <sstream>

#include "engine/par_engine.hpp"
#include "engine/seq_engine.hpp"
#include "support/error.hpp"

namespace parulel {
namespace {

constexpr const char* kCounting = R"(
(deftemplate counter (slot n))
(defrule count-up
  ?c <- (counter (n ?n))
  (test (< ?n 10))
  =>
  (retract ?c)
  (assert (counter (n (+ ?n 1)))))
(deffacts init (counter (n 0)))
)";

TEST(SequentialEngine, RunsToQuiescence) {
  const Program p = parse_program(kCounting);
  SequentialEngine engine(p, {});
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_TRUE(stats.quiescent);
  EXPECT_FALSE(stats.halted);
  EXPECT_EQ(stats.total_firings, 10u);
  EXPECT_EQ(stats.cycles, 10u);  // one firing per cycle
  // Final WM: exactly (counter (n 10)).
  const auto& wm = engine.wm();
  EXPECT_EQ(wm.alive_count(), 1u);
}

TEST(SequentialEngine, HaltStopsTheRun) {
  const Program p = parse_program(R"(
    (deftemplate t (slot v))
    (defrule stop (t (v ?x)) => (halt))
    (defrule never (t (v ?x)) => (assert (t (v (+ ?x 100)))))
    (deffacts f (t (v 1))))");
  EngineConfig cfg;
  cfg.strategy = Strategy::First;
  SequentialEngine engine(p, cfg);
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_TRUE(stats.halted);
  EXPECT_EQ(stats.total_firings, 1u);
}

TEST(SequentialEngine, MaxCyclesGuards) {
  const Program p = parse_program(R"(
    (deftemplate t (slot v))
    (defrule flip ?f <- (t (v ?x)) => (retract ?f)
      (assert (t (v (- 1 ?x)))))
    (deffacts f (t (v 0))))");
  EngineConfig cfg;
  cfg.max_cycles = 50;
  SequentialEngine engine(p, cfg);
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.cycles, 50u);
  EXPECT_FALSE(stats.quiescent);
}

TEST(SequentialEngine, SalienceDominatesStrategy) {
  const Program p = parse_program(R"(
    (deftemplate t (slot v))
    (deftemplate log (slot who))
    (defrule low (declare (salience -10)) (t (v ?x))
      => (assert (log (who low))) (halt))
    (defrule high (declare (salience 10)) (t (v ?x))
      => (assert (log (who high))) (halt))
    (deffacts f (t (v 1))))");
  SequentialEngine engine(p, {});
  engine.assert_initial_facts();
  engine.run();
  const auto& wm = engine.wm();
  const TemplateId log_t = *p.schema.find(p.symbols->intern("log"));
  ASSERT_EQ(wm.extent(log_t).size(), 1u);
  const FactView f = wm.view(wm.extent(log_t)[0]);
  EXPECT_EQ(f.slot(0), Value::symbol(p.symbols->intern("high")));
}

TEST(SequentialEngine, LexPrefersRecentFacts) {
  const Program p = parse_program(R"(
    (deftemplate t (slot v))
    (deftemplate winner (slot v))
    (defrule pick (t (v ?x)) (not (winner (v 0))) =>
      (assert (winner (v 0))) (assert (winner (v ?x))))
    (deffacts f (t (v 1)) (t (v 2)) (t (v 3))))");
  EngineConfig cfg;
  cfg.strategy = Strategy::Lex;
  SequentialEngine engine(p, cfg);
  engine.assert_initial_facts();
  engine.run();
  // LEX picks the instantiation on the most recent fact: (t (v 3)).
  const auto& wm = engine.wm();
  const TemplateId w = *p.schema.find(p.symbols->intern("winner"));
  bool saw3 = false;
  for (FactId id : wm.extent(w)) {
    if (wm.view(id).slot(0) == Value::integer(3)) saw3 = true;
  }
  EXPECT_TRUE(saw3);
}

TEST(SequentialEngine, PrintoutGoesToConfiguredStream) {
  const Program p = parse_program(R"(
    (deftemplate t (slot v))
    (defrule say (t (v ?x)) => (printout "v=" ?x) (halt))
    (deffacts f (t (v 42))))");
  std::ostringstream out;
  EngineConfig cfg;
  cfg.output = &out;
  SequentialEngine engine(p, cfg);
  engine.assert_initial_facts();
  engine.run();
  EXPECT_EQ(out.str(), "v=42\n");
}

TEST(SequentialEngine, RejectsParallelMatcher) {
  const Program p = parse_program(kCounting);
  EngineConfig cfg;
  cfg.matcher = MatcherKind::ParallelTreat;
  EXPECT_THROW(SequentialEngine(p, cfg), RuntimeError);
}

TEST(SequentialEngine, TreatMatcherWorksToo) {
  const Program p = parse_program(kCounting);
  EngineConfig cfg;
  cfg.matcher = MatcherKind::Treat;
  SequentialEngine engine(p, cfg);
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.total_firings, 10u);
}

TEST(SequentialEngine, CompiledMatcherWorksToo) {
  const Program p = parse_program(kCounting);
  EngineConfig cfg;
  cfg.matcher = MatcherKind::Compiled;
  SequentialEngine engine(p, cfg);
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.total_firings, 10u);
}

// ----------------------------------------------------------------- PARULEL

EngineConfig par_cfg(unsigned threads) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.matcher = MatcherKind::ParallelTreat;
  return cfg;
}

TEST(ParallelEngine, FiresWholeConflictSetPerCycle) {
  const Program p = parse_program(R"(
    (deftemplate in (slot v))
    (deftemplate out (slot v))
    (defrule copy (in (v ?x)) => (assert (out (v ?x))))
    (deffacts f (in (v 1)) (in (v 2)) (in (v 3)) (in (v 4))))");
  ParallelEngine engine(p, par_cfg(4));
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_TRUE(stats.quiescent);
  EXPECT_EQ(stats.total_firings, 4u);
  // All four fired in ONE cycle.
  EXPECT_EQ(stats.cycles, 1u);
}

TEST(ParallelEngine, RefractionPreventsRefiring) {
  const Program p = parse_program(R"(
    (deftemplate t (slot v))
    (deftemplate mark (slot v))
    (defrule once (t (v ?x)) => (assert (mark (v ?x))))
    (deffacts f (t (v 1))))");
  ParallelEngine engine(p, par_cfg(2));
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.total_firings, 1u);
}

TEST(ParallelEngine, SaturatesTransitiveClosure) {
  const Program p = parse_program(R"(
    (deftemplate edge (slot from) (slot to))
    (deftemplate path (slot from) (slot to))
    (defrule base (edge (from ?a) (to ?b)) (not (path (from ?a) (to ?b)))
      => (assert (path (from ?a) (to ?b))))
    (defrule extend (path (from ?a) (to ?b)) (edge (from ?b) (to ?c))
      (not (path (from ?a) (to ?c)))
      => (assert (path (from ?a) (to ?c))))
    (deffacts g
      (edge (from 1) (to 2)) (edge (from 2) (to 3))
      (edge (from 3) (to 4)) (edge (from 4) (to 5))))");
  ParallelEngine engine(p, par_cfg(4));
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_TRUE(stats.quiescent);
  // Chain closure: 4+3+2+1 = 10 paths.
  const TemplateId path_t = *p.schema.find(p.symbols->intern("path"));
  EXPECT_EQ(engine.wm().extent(path_t).size(), 10u);
  // Far fewer cycles than firings (the PARULEL claim).
  EXPECT_LT(stats.cycles, stats.total_firings);
}

TEST(ParallelEngine, CompiledMatcherUnderParallelFiring) {
  // The compiled VM drives the match phase single-threaded while the
  // firing phase fans out over the pool — the combination the TSan job
  // watches for races between the frozen-snapshot readers and the VM's
  // preallocated interpreter state.
  const Program p = parse_program(R"(
    (deftemplate edge (slot from) (slot to))
    (deftemplate path (slot from) (slot to))
    (defrule base (edge (from ?a) (to ?b)) (not (path (from ?a) (to ?b)))
      => (assert (path (from ?a) (to ?b))))
    (defrule extend (path (from ?a) (to ?b)) (edge (from ?b) (to ?c))
      (not (path (from ?a) (to ?c)))
      => (assert (path (from ?a) (to ?c))))
    (deffacts g
      (edge (from 1) (to 2)) (edge (from 2) (to 3))
      (edge (from 3) (to 4)) (edge (from 4) (to 5))))");
  EngineConfig cfg = par_cfg(4);
  cfg.matcher = MatcherKind::Compiled;
  ParallelEngine compiled_engine(p, cfg);
  compiled_engine.assert_initial_facts();
  const RunStats compiled_stats = compiled_engine.run();

  ParallelEngine treat_engine(p, par_cfg(4));
  treat_engine.assert_initial_facts();
  const RunStats treat_stats = treat_engine.run();

  EXPECT_TRUE(compiled_stats.quiescent);
  EXPECT_EQ(compiled_stats.cycles, treat_stats.cycles);
  EXPECT_EQ(compiled_stats.total_firings, treat_stats.total_firings);
  EXPECT_EQ(compiled_engine.wm().content_fingerprint(),
            treat_engine.wm().content_fingerprint());
}

TEST(ParallelEngine, MetaRuleRedactsWithinCycle) {
  const Program p = parse_program(R"(
    (deftemplate t (slot v))
    (deftemplate win (slot v))
    (defrule claim (t (v ?x)) => (assert (win (v ?x))))
    (defmetarule pick-one
      (inst-claim (id ?i))
      (inst-claim (id ?j))
      (test (< ?i ?j))
      => (redact ?j))
    (deffacts f (t (v 1)) (t (v 2)) (t (v 3))))");
  ParallelEngine engine(p, par_cfg(2));
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  // Cycle 1 fires only the surviving instantiation; the redacted two
  // remain eligible and fire in later cycles (one each).
  EXPECT_EQ(stats.total_firings, 3u);
  EXPECT_GE(stats.total_redactions, 2u);
  EXPECT_GE(stats.cycles, 3u);
}

TEST(ParallelEngine, WriteConflictsDetectedAndCounted) {
  // Two rules retract the same fact in the same cycle.
  const Program p = parse_program(R"(
    (deftemplate t (slot v))
    (defrule r1 ?f <- (t (v ?x)) (test (> ?x 0)) => (retract ?f))
    (defrule r2 ?f <- (t (v ?x)) (test (< ?x 10)) => (retract ?f))
    (deffacts f (t (v 5))))");
  ParallelEngine engine(p, par_cfg(2));
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.total_firings, 2u);
  EXPECT_EQ(stats.total_retracts, 1u);
  EXPECT_EQ(stats.total_write_conflicts, 1u);
}

TEST(ParallelEngine, ModifyRaceFirstWriterWins) {
  const Program p = parse_program(R"(
    (deftemplate t (slot v))
    (defrule bump-a ?f <- (t (v 0)) => (modify ?f (v 1)))
    (defrule bump-b ?f <- (t (v 0)) => (modify ?f (v 2)))
    (deffacts f (t (v 0))))");
  ParallelEngine engine(p, par_cfg(2));
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.total_write_conflicts, 1u);
  // Exactly one surviving fact; the first instantiation's value won.
  EXPECT_EQ(engine.wm().alive_count(), 1u);
}

TEST(ParallelEngine, FullyRedactedCycleIsQuiescence) {
  const Program p = parse_program(R"(
    (deftemplate t (slot v))
    (defrule go (t (v ?x)) => (assert (t (v (+ ?x 1)))))
    (defmetarule stop-everything
      (inst-go (id ?i))
      => (redact ?i))
    (deffacts f (t (v 1))))");
  ParallelEngine engine(p, par_cfg(2));
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_TRUE(stats.quiescent);
  EXPECT_EQ(stats.total_firings, 0u);
}

TEST(ParallelEngine, HaltInParallelCycleStops) {
  const Program p = parse_program(R"(
    (deftemplate t (slot v))
    (defrule stop (t (v ?x)) (test (== ?x 2)) => (halt))
    (defrule spawn (t (v ?x)) (test (< ?x 2))
      => (assert (t (v (+ ?x 1)))))
    (deffacts f (t (v 1))))");
  ParallelEngine engine(p, par_cfg(2));
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_TRUE(stats.halted);
}

TEST(ParallelEngine, RejectsReteMatcher) {
  const Program p = parse_program(kCounting);
  EngineConfig cfg;
  cfg.matcher = MatcherKind::Rete;
  EXPECT_THROW(ParallelEngine(p, cfg), RuntimeError);
}

TEST(ParallelEngine, TraceCyclesRecordsPhases) {
  const Program p = parse_program(kCounting);
  EngineConfig cfg = par_cfg(2);
  cfg.trace_cycles = true;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  ASSERT_EQ(stats.per_cycle.size(), stats.cycles);
  EXPECT_EQ(stats.per_cycle[0].fired, 1u);
}

TEST(ParallelEngine, SequentialCountingStillWorks) {
  // The counter program is inherently sequential (one instantiation per
  // cycle); the parallel engine must produce identical results.
  const Program p = parse_program(kCounting);
  ParallelEngine engine(p, par_cfg(4));
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.total_firings, 10u);
  EXPECT_EQ(engine.wm().alive_count(), 1u);
}

}  // namespace
}  // namespace parulel
