// Unit tests for the bytecode compiler and its VM.
//
// The behavioural story (compiled == interpreted on every program) is
// carried by the parameterized suites in test_match.cpp and the random
// differential sweep in test_random_programs.cpp. This file covers the
// compiler-specific surface: listing determinism, the code image's
// shape, stats accounting, and the matcher-factory wiring.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "compile/compiler.hpp"
#include "compile/vm.hpp"
#include "engine/seq_engine.hpp"
#include "match/treat.hpp"
#include "workloads/workloads.hpp"

namespace parulel {
namespace {

constexpr const char* kJoinProgram = R"(
  (deftemplate edge (slot from) (slot to))
  (deftemplate mark (slot n))
  (defrule chain
    (edge (from ?a) (to ?b))
    (edge (from ?b) (to ?c))
    (not (mark (n ?a)))
    => (assert (mark (n ?a))))
  (defrule witness
    (edge (from ?a) (to ?b))
    (exists (mark (n ?b)))
    => (halt))
  (deffacts f
    (edge (from 1) (to 2))
    (edge (from 2) (to 3))
    (edge (from 2) (to 4))
    (mark (n 4))))";

// -------------------------------------------------------------- listing

TEST(CompileListing, DeterministicAcrossCompiles) {
  const Program p = parse_program(kJoinProgram);
  const std::string first = compile_listing(p);
  const std::string second = compile_listing(p);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(CompileListing, ShowsNetsRulesAndPools) {
  const Program p = parse_program(kJoinProgram);
  const std::string listing = compile_listing(p);
  EXPECT_NE(listing.find("net edge:"), std::string::npos);
  EXPECT_NE(listing.find("derive chain/0:"), std::string::npos);
  EXPECT_NE(listing.find("rematch chain/neg0:"), std::string::npos);
  EXPECT_NE(listing.find("derive witness/0:"), std::string::npos);
  EXPECT_NE(listing.find("emit"), std::string::npos);
  EXPECT_NE(listing.find("quant"), std::string::npos);
}

TEST(CompileListing, MatchesTheMatchersOwnImage) {
  const Program p = parse_program(kJoinProgram);
  CompiledMatcher m(p.rules, p.alphas, p.schema.size());
  EXPECT_EQ(m.image().listing(p), compile_listing(p));
}

// ------------------------------------------------------------ code image

TEST(CodeImage, ShapeReflectsTheProgram) {
  const Program p = parse_program(kJoinProgram);
  CompiledMatcher m(p.rules, p.alphas, p.schema.size());
  const CodeImage& image = m.image();
  EXPECT_FALSE(image.code.empty());
  EXPECT_EQ(image.code.back().op, OpCode::Halt);
  EXPECT_EQ(image.rules.size(), p.rules.size());
  // chain: two positives + the `not` rematch; witness: one positive +
  // the `exists` rematch (a new witness unblocks, so it needs one too).
  EXPECT_EQ(image.rules[0].derive.size(), 2u);
  EXPECT_EQ(image.rules[0].rematch.size(), 1u);
  EXPECT_EQ(image.rules[1].derive.size(), 1u);
  EXPECT_EQ(image.rules[1].rematch.size(), 1u);
  // Both templates are matched, so both have a net entry.
  ASSERT_EQ(image.net_entry.size(), p.schema.size());
  for (const std::int32_t entry : image.net_entry) EXPECT_GE(entry, 0);
  EXPECT_GT(image.byte_size(), 0u);
}

TEST(CodeImage, UnmatchedTemplateGetsNoNet) {
  const Program p = parse_program(R"(
    (deftemplate used (slot v))
    (deftemplate ignored (slot v))
    (defrule r (used (v ?x)) => (halt)))");
  CompiledMatcher m(p.rules, p.alphas, p.schema.size());
  ASSERT_EQ(m.image().net_entry.size(), 2u);
  EXPECT_GE(m.image().net_entry[0], 0);
  EXPECT_EQ(m.image().net_entry[1], -1);
}

// ----------------------------------------------------------------- stats

TEST(CompileStatsTest, CodegenCountersFilledAtConstruction) {
  const Program p = parse_program(kJoinProgram);
  CompiledMatcher m(p.rules, p.alphas, p.schema.size());
  const CompileStats& cs = *m.compile_stats();
  EXPECT_GT(cs.instructions, 0u);
  EXPECT_GT(cs.code_bytes, 0u);
  EXPECT_GT(cs.programs, 0u);
  EXPECT_EQ(cs.instructions, m.image().code.size());
  EXPECT_EQ(cs.code_bytes, m.image().byte_size());
  // Nothing executed yet.
  EXPECT_EQ(cs.dispatches, 0u);
  EXPECT_EQ(cs.emits, 0u);
}

TEST(CompileStatsTest, NetSharesCommonTestPrefixes) {
  // alpha{kind==1} and alpha{kind==1, v==2} share the kind test: two
  // trie nodes carry three spec tests, so one test is shared away.
  const Program p = parse_program(R"(
    (deftemplate item (slot kind) (slot v))
    (defrule a (item (kind 1) (v ?x)) => (halt))
    (defrule b (item (kind 1) (v 2)) => (halt)))");
  CompiledMatcher m(p.rules, p.alphas, p.schema.size());
  const CompileStats& cs = *m.compile_stats();
  EXPECT_EQ(cs.net_nodes, 2u);
  EXPECT_EQ(cs.net_shared, 1u);
}

TEST(CompileStatsTest, ExecutionCountersAdvance) {
  const Program p = parse_program(kJoinProgram);
  WorkingMemory wm(p.schema);
  CompiledMatcher m(p.rules, p.alphas, p.schema.size());
  for (const auto& fact : p.initial_facts) wm.assert_fact(fact.tmpl, fact.slots);
  m.apply_delta(wm, wm.drain_delta());
  const CompileStats& cs = *m.compile_stats();
  EXPECT_GT(cs.dispatches, 0u);
  EXPECT_EQ(cs.net_runs, 4u);     // one per added fact
  EXPECT_GT(cs.derive_runs, 0u);
  EXPECT_GT(cs.quant_checks, 0u);
  EXPECT_GT(cs.emits, 0u);
}

// ------------------------------------------------------------ vm parity

std::vector<Instantiation> conflict_snapshot(Matcher& m) {
  std::vector<Instantiation> out;
  for (const InstId id : m.conflict_set().alive_ids()) {
    out.push_back(m.conflict_set().get(id));
  }
  return out;
}

TEST(CompiledVm, ConflictSetIdenticalToTreatIncludingIds) {
  const Program p = parse_program(kJoinProgram);
  WorkingMemory wm(p.schema);
  TreatMatcher treat(p.rules, p.alphas, p.schema.size());
  CompiledMatcher compiled(p.rules, p.alphas, p.schema.size());
  for (const auto& fact : p.initial_facts) wm.assert_fact(fact.tmpl, fact.slots);
  const Delta delta = wm.drain_delta();
  treat.apply_delta(wm, delta);
  compiled.apply_delta(wm, delta);

  const auto want = conflict_snapshot(treat);
  const auto got = conflict_snapshot(compiled);
  ASSERT_EQ(want.size(), got.size());
  EXPECT_EQ(treat.conflict_set().alive_ids(),
            compiled.conflict_set().alive_ids());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].rule, got[i].rule) << i;
    EXPECT_EQ(want[i].facts, got[i].facts) << i;
  }
}

TEST(CompiledVm, ExternalDeltaCountsAndMatches) {
  const Program p = parse_program(R"(
    (deftemplate item (slot v))
    (defrule r (item (v ?x)) => (halt)))");
  WorkingMemory wm(p.schema);
  CompiledMatcher m(p.rules, p.alphas, p.schema.size());
  const TemplateId t = *p.schema.find(p.symbols->intern("item"));
  wm.assert_fact(t, {Value::integer(7)});
  m.apply_external_delta(wm, wm.drain_delta());
  EXPECT_EQ(m.stats().external_deltas, 1u);
  EXPECT_EQ(m.conflict_set().size(), 1u);
}

// --------------------------------------------------------------- wiring

TEST(CompiledWiring, KindNameRoundTripsAndFactoryLists) {
  EXPECT_STREQ(matcher_kind_name(MatcherKind::Compiled), "compiled");
  EXPECT_EQ(parse_matcher_kind("compiled"), MatcherKind::Compiled);
  const auto kinds = all_matcher_kinds();
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), MatcherKind::Compiled),
            kinds.end());
  for (const MatcherKind k : kinds) {
    EXPECT_EQ(parse_matcher_kind(matcher_kind_name(k)), k);
  }
}

TEST(CompiledWiring, FactoryBuildsACompiledMatcher) {
  const Program p = parse_program(kJoinProgram);
  const auto m = make_matcher(MatcherKind::Compiled, p);
  EXPECT_STREQ(m->name(), "compiled");
  EXPECT_NE(m->compile_stats(), nullptr);
}

std::uint64_t run_seq(const Program& p, MatcherKind matcher,
                      RunStats* stats_out) {
  EngineConfig cfg;
  cfg.matcher = matcher;
  SequentialEngine engine(p, cfg);
  engine.assert_initial_facts();
  RunStats stats = engine.run();
  if (stats_out) *stats_out = stats;
  return engine.wm().content_fingerprint();
}

TEST(CompiledWiring, SeqEngineWaltzFingerprintMatchesTreat) {
  const Program p = parse_program(workloads::make_waltz(2).source);
  RunStats treat_stats, compiled_stats;
  const std::uint64_t treat_fp = run_seq(p, MatcherKind::Treat, &treat_stats);
  const std::uint64_t compiled_fp =
      run_seq(p, MatcherKind::Compiled, &compiled_stats);
  EXPECT_EQ(treat_fp, compiled_fp);
  EXPECT_EQ(treat_stats.cycles, compiled_stats.cycles);
  EXPECT_EQ(treat_stats.total_firings, compiled_stats.total_firings);
}

}  // namespace
}  // namespace parulel
