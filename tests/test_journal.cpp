// Durability tests: the write-ahead journal, crash recovery, and the
// parulel/2 exactly-once contract.
//
// The tentpole gate is the crash-equivalence sweep: drive a durable
// session through a scripted load, "crash" the service at every point
// in the script (with and without losing the last acknowledgement),
// recover from the journal into a fresh service, resume, replay the
// client's unacknowledged suffix, finish the script — and require the
// final working-memory fingerprint to equal an uninterrupted run's,
// across snapshot-truncation intervals. The workload is a consume rule
// (items are retracted into a running tally), so a single double-apply
// or lost batch shifts the tally and the fingerprints diverge.
//
// Around it: record round-trips, CRC framing, torn-tail tolerance vs
// fail-closed corruption, future-format rejection, snapshot truncation,
// dedup-window replay/stale semantics, and quarantine behavior.
#include <gtest/gtest.h>

#include <array>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "service/journal.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "service/session.hpp"

namespace parulel::service {
namespace {

namespace fs = std::filesystem;

// Items are consumed (retracted) into a tally: re-applying a batch that
// already committed changes the sum, so the fingerprint catches any
// double-apply. One item is in flight per run, which keeps the rule's
// firings sequential and the tally a plain accumulator.
constexpr const char* kConsumeSource = R"((deftemplate item (slot v))
(deftemplate tally (slot n))
(defrule consume
  ?i <- (item (v ?x))
  ?t <- (tally (n ?c))
  =>
  (retract ?i)
  (retract ?t)
  (assert (tally (n (+ ?c ?x)))))
(deffacts init (tally (n 0))))";

/// A fresh journal directory per test, removed on teardown.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("parulel_journal_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

std::string write_program_file(const std::string& tag) {
  const std::string path =
      (fs::temp_directory_path() / ("parulel_journal_" + tag + ".clp"))
          .string();
  std::ofstream out(path);
  out << kConsumeSource;
  return path;
}

ServiceConfig durable_config(const TempDir& dir,
                             std::uint64_t snapshot_every = 0,
                             std::size_t dedup_window = 256) {
  ServiceConfig cfg;
  cfg.journal.dir = dir.str();
  cfg.journal.snapshot_every = snapshot_every;
  cfg.journal.dedup_window = dedup_window;
  // fsync off in tests: kill -9 durability (what the sweep emulates)
  // only needs the write() ordering, and the sweep opens hundreds of
  // services.
  cfg.journal.fsync = false;
  return cfg;
}

/// Resume the (detached) durable session `name` just long enough to
/// read its fingerprint, then detach again.
std::uint64_t detached_fingerprint(RuleService& svc,
                                   const std::string& name) {
  std::string err;
  const SessionId id = svc.resume_durable(name, &err);
  EXPECT_NE(id, 0u) << err;
  if (id == 0) return 0;
  std::uint64_t fp = 0;
  svc.with_session(id, [&](Session& s) { fp = s.fingerprint(); });
  svc.release_session(id);
  return fp;
}

// ------------------------------------------------------- encode/decode

TEST(JournalCodec, Crc32MatchesKnownVector) {
  // The zlib polynomial's canonical check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(JournalCodec, BatchRecordRoundTrips) {
  SymbolTable symbols;
  BatchRecord record;
  record.seq = 7;
  BatchSegment seg;
  JournalOp op;
  op.kind = JournalOp::Kind::Assert;
  op.tmpl = 3;
  op.slots = {Value::integer(42), Value::symbol(symbols.intern("acme")),
              Value::real(2.5)};
  seg.ops.push_back(op);
  JournalOp retract;
  retract.kind = JournalOp::Kind::Retract;
  retract.fact = 19;
  seg.ops.push_back(retract);
  seg.fingerprint = 0xDEADBEEFCAFE1234ull;
  seg.high_water = 23;
  record.segments.push_back(seg);
  record.acks.push_back({4, "ok assert depth=1\n"});
  record.acks.push_back({5, "ok run cycles=2 committed=5\n"});

  const std::string payload = encode_batch(record, symbols);
  ASSERT_EQ(record_type(payload), RecordType::Batch);

  // Decode through a FRESH symbol table: symbol ids are interning-order
  // dependent, so the codec must carry symbols as text.
  SymbolTable fresh;
  const BatchRecord back = decode_batch(payload, fresh);
  EXPECT_EQ(back.seq, 7u);
  ASSERT_EQ(back.segments.size(), 1u);
  ASSERT_EQ(back.segments[0].ops.size(), 2u);
  EXPECT_EQ(back.segments[0].ops[0].tmpl, 3u);
  ASSERT_EQ(back.segments[0].ops[0].slots.size(), 3u);
  EXPECT_EQ(back.segments[0].ops[0].slots[0], Value::integer(42));
  EXPECT_EQ(back.segments[0].ops[0].slots[1],
            Value::symbol(fresh.intern("acme")));
  EXPECT_EQ(back.segments[0].ops[1].kind, JournalOp::Kind::Retract);
  EXPECT_EQ(back.segments[0].ops[1].fact, 19u);
  EXPECT_EQ(back.segments[0].fingerprint, 0xDEADBEEFCAFE1234ull);
  EXPECT_EQ(back.segments[0].high_water, 23u);
  ASSERT_EQ(back.acks.size(), 2u);
  EXPECT_EQ(back.acks[0].req, 4u);
  EXPECT_EQ(back.acks[1].response, "ok run cycles=2 committed=5\n");
}

TEST(JournalCodec, HeaderRoundTripsAndFutureVersionFailsClosed) {
  const std::string payload = encode_header("sess", kConsumeSource);
  ASSERT_EQ(record_type(payload), RecordType::Header);
  const JournalHeader h = decode_header(payload);
  EXPECT_EQ(h.version, kJournalFormatVersion);
  EXPECT_EQ(h.name, "sess");
  EXPECT_EQ(h.program_text, kConsumeSource);

  const std::string future =
      encode_header("sess", kConsumeSource, kJournalFormatVersion + 1);
  EXPECT_THROW(decode_header(future), JournalError);
}

TEST(JournalCodec, UnknownRecordTypeFailsClosed) {
  EXPECT_THROW(record_type(""), JournalError);
  EXPECT_THROW(record_type(std::string(1, '\x7f')), JournalError);
}

// --------------------------------------------------- file-level framing

/// Append one batch journal via the real writer and return its bytes.
std::string build_journal(const TempDir& dir, std::size_t batches) {
  JournalStats stats;
  const std::string path = (dir.path / "s.wal").string();
  auto journal =
      SessionJournal::create(path, "s", kConsumeSource, false, &stats);
  SymbolTable symbols;
  for (std::size_t i = 0; i < batches; ++i) {
    BatchRecord record;
    record.seq = i + 1;
    BatchSegment seg;
    JournalOp op;
    op.tmpl = 1;
    op.slots = {Value::integer(static_cast<std::int64_t>(i))};
    seg.ops.push_back(op);
    record.segments.push_back(seg);
    record.acks.push_back({i + 1, "ok run\n"});
    journal->append(encode_batch(record, symbols));
  }
  journal.reset();
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(JournalScanTest, TruncationSweepTornTailOnly) {
  TempDir dir("torn");
  const std::string bytes = build_journal(dir, 3);
  const std::string path = (dir.path / "s.wal").string();

  const JournalScan full = scan_journal(path);
  EXPECT_EQ(full.payloads.size(), 3u);
  EXPECT_EQ(full.torn_bytes, 0u);
  const std::size_t header_end = bytes.size() -
      [&] {  // total batch-record bytes = file minus the header record
        std::size_t n = 0;
        for (const std::string& p : full.payloads) n += 8 + p.size();
        return n;
      }();

  // Chop the file at every byte past the header record: the scan must
  // never throw and never invent records — it salvages the complete
  // prefix and counts the rest as the torn tail.
  for (std::size_t cut = bytes.size() - 1; cut >= header_end; --cut) {
    write_bytes(path, bytes.substr(0, cut));
    const JournalScan scan = scan_journal(path);
    EXPECT_LE(scan.payloads.size(), 3u);
    std::size_t complete = header_end;
    for (const std::string& p : scan.payloads) complete += 8 + p.size();
    EXPECT_EQ(scan.torn_bytes, cut - complete) << "cut=" << cut;
  }

  // Chopping inside the header record destroys the journal's identity:
  // that is corruption, not a torn tail.
  write_bytes(path, bytes.substr(0, header_end - 1));
  EXPECT_THROW(scan_journal(path), JournalError);
}

TEST(JournalScanTest, FlippedCrcMidFileFailsClosed) {
  TempDir dir("crc");
  const std::string bytes = build_journal(dir, 3);
  const std::string path = (dir.path / "s.wal").string();

  // Corrupt a payload byte of the FIRST batch record: valid records
  // follow, so this is real corruption and must throw, not be
  // "torn-tailed" away. (The offset math mirrors the framing: the
  // header record ends at file size minus the three framed batches.)
  const JournalScan intact = scan_journal(path);
  std::size_t batch_bytes = 0;
  for (const std::string& p : intact.payloads) batch_bytes += 8 + p.size();
  const std::size_t first_payload = bytes.size() - batch_bytes + 8;
  std::string corrupt = bytes;
  corrupt[first_payload] ^= 0x01;
  write_bytes(path, corrupt);
  EXPECT_THROW(scan_journal(path), JournalError);

  // The same flip in the LAST byte is a torn tail: the damaged record
  // reaches EOF, exactly what a crash mid-write leaves behind.
  corrupt = bytes;
  corrupt.back() ^= 0x01;
  write_bytes(path, corrupt);
  const JournalScan scan = scan_journal(path);
  EXPECT_EQ(scan.payloads.size(), 2u);
  EXPECT_GT(scan.torn_bytes, 0u);
}

TEST(JournalScanTest, BadMagicAndFutureVersionFailClosed) {
  TempDir dir("magic");
  const std::string path = (dir.path / "s.wal").string();
  write_bytes(path, "this is not a journal at all, sorry");
  EXPECT_THROW(scan_journal(path), JournalError);

  // A well-framed file whose header claims a future format version must
  // fail closed too: this build cannot know what the records mean.
  const std::string payload =
      encode_header("s", kConsumeSource, kJournalFormatVersion + 1);
  std::string framed;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  framed.append(reinterpret_cast<const char*>(&len), 4);
  framed.append(reinterpret_cast<const char*>(&crc), 4);
  framed += payload;
  write_bytes(path, framed);
  EXPECT_THROW(scan_journal(path), JournalError);
}

TEST(JournalScanTest, CreateRefusesToClobberExistingJournal) {
  TempDir dir("clobber");
  build_journal(dir, 1);
  JournalStats stats;
  EXPECT_THROW(SessionJournal::create((dir.path / "s.wal").string(), "s",
                                      kConsumeSource, false, &stats),
               JournalError);
}

// ------------------------------------------------ exact-state snapshots

TEST(ExactSnapshotTest, RoundTripReproducesFingerprintAndIds) {
  const Program program = parse_program(kConsumeSource);
  const TemplateId item =
      *program.schema.find(program.symbols->intern("item"));
  SessionConfig cfg;
  Session a(program, cfg);
  a.assert_fact(item, {Value::integer(5)});
  a.run_to_quiescence();
  a.assert_fact(item, {Value::integer(9)});
  a.run_to_quiescence();

  const ExactSnapshot snap = a.snapshot_exact();
  SessionConfig bcfg;
  bcfg.assert_initial_facts = false;
  Session b(program, bcfg);
  b.restore_exact(snap);
  EXPECT_EQ(b.fingerprint(), a.fingerprint());
  EXPECT_EQ(b.wm().high_water(), a.wm().high_water());

  // FactId assignment must continue identically after a restore.
  FactId ida = kInvalidFact, idb = kInvalidFact;
  a.assert_fact(item, {Value::integer(2)}, &ida);
  b.assert_fact(item, {Value::integer(2)}, &idb);
  EXPECT_EQ(ida, idb);
  a.run_to_quiescence();
  b.run_to_quiescence();
  EXPECT_EQ(b.fingerprint(), a.fingerprint());
}

// --------------------------------------------- protocol-level durability

/// Drive one line through a protocol, returning the response bytes.
std::string drive(ServeProtocol& proto, const std::string& line) {
  std::string out;
  proto.handle_line(line, out);
  return out;
}

TEST(DurableProtocol, OpenRunRecoverResume) {
  TempDir dir("roundtrip");
  const std::string prog = write_program_file("roundtrip");
  std::uint64_t fp_before = 0;
  {
    RuleService svc(durable_config(dir));
    {
      ServeProtocol proto(svc);
      EXPECT_EQ(drive(proto, "open s " + prog).substr(0, 7), "ok open");
      EXPECT_EQ(drive(proto, "@1 assert s item 5"),
                "ok assert depth=1\n");
      const std::string run = drive(proto, "@2 run s");
      EXPECT_EQ(run.substr(0, 6), "ok run") << run;
      EXPECT_NE(run.find(" committed=2"), std::string::npos) << run;
    }  // conversation ends: durable session detaches, stays resumable
    fp_before = detached_fingerprint(svc, "s");
  }  // service dies with the session detached — the journal survives

  RuleService svc(durable_config(dir));
  const std::vector<RecoveryReport> reports = svc.recover_journals();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].ok) << reports[0].error;
  EXPECT_EQ(reports[0].name, "s");
  EXPECT_EQ(reports[0].batches, 1u);
  EXPECT_EQ(reports[0].fingerprint, fp_before);

  ServeProtocol proto(svc);
  const std::string resumed = drive(proto, "resume s");
  EXPECT_EQ(resumed.substr(0, 11), "ok resume s") << resumed;
  EXPECT_NE(resumed.find(" committed=2"), std::string::npos) << resumed;
  const std::string q = drive(proto, "query s tally");
  EXPECT_NE(q.find("(n 5)"), std::string::npos) << q;
}

TEST(DurableProtocol, ReplayAnswersFromCacheWithoutReExecuting) {
  TempDir dir("replay");
  const std::string prog = write_program_file("replay");
  RuleService svc(durable_config(dir));
  ServeProtocol proto(svc);
  drive(proto, "open s " + prog);
  drive(proto, "@1 assert s item 5");
  const std::string first = drive(proto, "@2 run s");
  EXPECT_EQ(first.substr(0, 6), "ok run");

  // Same ids again — a client retrying after a lost ack. The responses
  // must be byte-identical AND the tally must not move: the item was
  // consumed, so a real re-execution would change it.
  EXPECT_EQ(drive(proto, "@1 assert s item 5"), "ok assert depth=1\n");
  EXPECT_EQ(drive(proto, "@2 run s"), first);
  const std::string q = drive(proto, "query s tally");
  EXPECT_NE(q.find("(n 5)"), std::string::npos) << q;
}

TEST(DurableProtocol, StaleIdsBeyondTheWindowFailClosed) {
  TempDir dir("stale");
  const std::string prog = write_program_file("stale");
  RuleService svc(durable_config(dir, 0, /*dedup_window=*/2));
  ServeProtocol proto(svc);
  drive(proto, "open s " + prog);
  drive(proto, "@1 assert s item 1");
  drive(proto, "@2 run s");
  drive(proto, "@3 assert s item 2");
  drive(proto, "@4 run s");
  // ids 1 and 2 have been evicted from the 2-deep window: replaying
  // them cannot be answered exactly-once anymore, so it must be an
  // error, never a silent re-execution.
  EXPECT_EQ(drive(proto, "@1 assert s item 1"),
            "err stale request id: @1\n");
  const std::string q = drive(proto, "query s tally");
  EXPECT_NE(q.find("(n 3)"), std::string::npos) << q;
}

TEST(DurableProtocol, RequestIdsRequireDurableSessions) {
  ServiceConfig cfg;  // no journal dir
  RuleService svc(cfg);
  ServeProtocol proto(svc);
  const std::string prog = write_program_file("plain");
  drive(proto, "open s " + prog);
  const std::string out = drive(proto, "@1 assert s item 1");
  EXPECT_EQ(out.substr(0, 3), "err") << out;
  EXPECT_NE(out.find("durable"), std::string::npos) << out;
  // resume needs journaling too.
  EXPECT_EQ(drive(proto, "resume t").substr(0, 3), "err");
}

TEST(DurableProtocol, CorruptJournalQuarantinesAndFailsClosed) {
  TempDir dir("quarantine");
  const std::string prog = write_program_file("quarantine");
  {
    RuleService svc(durable_config(dir));
    ServeProtocol proto(svc);
    drive(proto, "open s " + prog);
    drive(proto, "@1 assert s item 5");
    drive(proto, "@2 run s");
    drive(proto, "@3 assert s item 7");
    drive(proto, "@4 run s");
  }
  // Flip a byte in the middle of the journal: mid-file corruption.
  const std::string path = (dir.path / "s.wal").string();
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes[bytes.size() / 2] ^= 0x40;
  write_bytes(path, bytes);

  RuleService svc(durable_config(dir));
  const std::vector<RecoveryReport> reports = svc.recover_journals();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].ok);
  EXPECT_FALSE(reports[0].error.empty());

  // The name answers err (fail closed), for resume AND for re-open —
  // silently rebuilding over a corrupt journal would destroy evidence.
  ServeProtocol proto(svc);
  EXPECT_NE(drive(proto, "resume s").find("journal-corrupt"),
            std::string::npos);
  EXPECT_NE(drive(proto, "open s " + prog).find("journal-corrupt"),
            std::string::npos);
  // And the file is left untouched for the operator.
  std::ifstream back(path, std::ios::binary);
  std::string after((std::istreambuf_iterator<char>(back)),
                    std::istreambuf_iterator<char>());
  EXPECT_EQ(after, bytes);
  EXPECT_EQ(svc.journal_stats_snapshot().recovery_failures, 1u);
}

TEST(DurableProtocol, CloseUnlinksTheJournal) {
  TempDir dir("close");
  const std::string prog = write_program_file("close");
  RuleService svc(durable_config(dir));
  ServeProtocol proto(svc);
  drive(proto, "open s " + prog);
  EXPECT_TRUE(fs::exists(dir.path / "s.wal"));
  EXPECT_EQ(drive(proto, "close s"), "ok close s\n");
  EXPECT_FALSE(fs::exists(dir.path / "s.wal"));
}

TEST(DurableProtocol, SnapshotTruncationBoundsTheFileAndKeepsState) {
  TempDir dir("snapshot");
  const std::string prog = write_program_file("snapshot");
  std::uint64_t fp = 0;
  {
    RuleService svc(durable_config(dir, /*snapshot_every=*/2));
    ServeProtocol proto(svc);
    drive(proto, "open s " + prog);
    std::uint64_t req = 1;
    for (int v : {3, 1, 4, 1, 5, 9}) {
      drive(proto, "@" + std::to_string(req++) + " assert s item " +
                       std::to_string(v));
      const std::string run =
          drive(proto, "@" + std::to_string(req++) + " run s");
      EXPECT_EQ(run.substr(0, 6), "ok run") << run;
    }
    EXPECT_GE(svc.journal_stats_snapshot().snapshots, 2u);
    {
      ServeProtocol reader(svc);
      // still attached to `proto` — the name is taken
      EXPECT_EQ(drive(reader, "resume s").substr(0, 3), "err");
    }
  }
  {
    RuleService svc(durable_config(dir, 2));
    const auto reports = svc.recover_journals();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_TRUE(reports[0].ok) << reports[0].error;
    EXPECT_TRUE(reports[0].from_snapshot);
    fp = reports[0].fingerprint;
    ServeProtocol proto(svc);
    const std::string q = drive(proto, "query s tally");
    EXPECT_EQ(drive(proto, "resume s").substr(0, 3), "ok ");
    EXPECT_NE(drive(proto, "query s tally").find("(n 23)"),
              std::string::npos);
  }
  // The truncated journal recovers to the same state an untruncated one
  // would have: compare against a no-snapshot control run of the same
  // script in a fresh directory.
  TempDir control_dir("snapshot_control");
  RuleService control(durable_config(control_dir, 0));
  {
    ServeProtocol proto(control);
    drive(proto, "open s " + prog);
    std::uint64_t req = 1;
    for (int v : {3, 1, 4, 1, 5, 9}) {
      drive(proto, "@" + std::to_string(req++) + " assert s item " +
                       std::to_string(v));
      drive(proto, "@" + std::to_string(req++) + " run s");
    }
  }
  EXPECT_EQ(detached_fingerprint(control, "s"), fp);
}

// ------------------------------- fail-closed: torn atomic records, ENOSPC

TEST(JournalScanTest, TornReportNamesTheRecordKindAndByteOffset) {
  TempDir dir("torn_kind");
  const std::string bytes = build_journal(dir, 2);
  const std::string path = (dir.path / "s.wal").string();

  const JournalScan full = scan_journal(path);
  ASSERT_EQ(full.payloads.size(), 2u);
  EXPECT_TRUE(full.torn_kind.empty());
  const std::size_t last_start =
      bytes.size() - (8 + full.payloads.back().size());

  // A cut past the last record's type byte: the report names WHICH
  // record kind the crash tore and where its frame starts, so an
  // operator can tell a torn batch (normal crash debris) from a torn
  // snapshot (atomic-rewrite machinery failed).
  write_bytes(path, bytes.substr(0, last_start + 9));
  JournalScan scan = scan_journal(path);
  EXPECT_EQ(scan.payloads.size(), 1u);
  EXPECT_GT(scan.torn_bytes, 0u);
  EXPECT_EQ(scan.torn_kind, "batch");
  EXPECT_EQ(scan.torn_offset, last_start);

  // A cut INSIDE the 8-byte frame header: not even the type byte
  // survived, so the kind degrades to "frame" at the same offset.
  write_bytes(path, bytes.substr(0, last_start + 5));
  scan = scan_journal(path);
  EXPECT_EQ(scan.payloads.size(), 1u);
  EXPECT_EQ(scan.torn_kind, "frame");
  EXPECT_EQ(scan.torn_offset, last_start);
}

TEST(JournalScanTest, TornHeaderRecordQuarantinesNotCrashes) {
  TempDir dir("torn_header");
  const std::string bytes = build_journal(dir, 1);
  const std::string path = (dir.path / "s.wal").string();

  // The header record spans [0, header_end); it is only ever written
  // through the atomic create/rewrite path, so a PARTIAL header is
  // never a crash-interrupted append — it is corruption and the scan
  // must fail closed at every cut point, not salvage or crash.
  std::uint32_t header_len = 0;
  std::memcpy(&header_len, bytes.data(), 4);
  const std::size_t header_end = 8 + header_len;
  for (const std::size_t cut :
       {std::size_t{3}, std::size_t{9}, header_end / 2, header_end - 1}) {
    write_bytes(path, bytes.substr(0, cut));
    EXPECT_THROW(scan_journal(path), JournalError) << "cut=" << cut;
  }

  // Recovery turns the throw into a quarantine: the name answers err
  // and the damaged file stays on disk as evidence.
  write_bytes(path, bytes.substr(0, header_end / 2));
  RuleService svc(durable_config(dir));
  const auto reports = svc.recover_journals();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].ok);
  ServeProtocol proto(svc);
  EXPECT_NE(drive(proto, "resume s").find("journal-corrupt"),
            std::string::npos);
  EXPECT_TRUE(fs::exists(path));
}

TEST(JournalScanTest, TornSnapshotRecordQuarantinesNotCrashes) {
  TempDir dir("torn_snap");
  const std::string prog = write_program_file("torn_snap");
  {
    RuleService svc(durable_config(dir, /*snapshot_every=*/1));
    ServeProtocol proto(svc);
    drive(proto, "open s " + prog);
    drive(proto, "@1 assert s item 5");
    EXPECT_EQ(drive(proto, "@2 run s").substr(0, 6), "ok run");
    EXPECT_GE(svc.journal_stats_snapshot().snapshots, 1u);
  }
  const std::string path = (dir.path / "s.wal").string();
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // After the snapshot_every=1 truncation the file is exactly header +
  // snapshot; like the header, the snapshot record is written atomically
  // (tmp + rename), so a torn one is corruption, not a torn tail.
  ASSERT_EQ(record_type(scan_journal(path).payloads.back()),
            RecordType::Snapshot);
  std::uint32_t header_len = 0;
  std::memcpy(&header_len, bytes.data(), 4);
  const std::size_t header_end = 8 + header_len;
  for (const std::size_t cut : {header_end + 9, bytes.size() - 1}) {
    write_bytes(path, bytes.substr(0, cut));
    EXPECT_THROW(scan_journal(path), JournalError) << "cut=" << cut;
  }

  write_bytes(path, bytes.substr(0, bytes.size() - 1));
  RuleService svc(durable_config(dir, 1));
  const auto reports = svc.recover_journals();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].ok);
  ServeProtocol proto(svc);
  EXPECT_NE(drive(proto, "resume s").find("journal-corrupt"),
            std::string::npos);
}

TEST(DurableProtocol, JournalIoFailureQuarantinesTheSession) {
  TempDir dir("journal_io");
  const std::string prog = write_program_file("journal_io");
  ServiceConfig cfg = durable_config(dir);
  // The injectable write-failure hook: the next `armed` journal writes
  // fail like a full disk.
  int armed = 0;
  cfg.journal.fail_writes = [&armed]() -> int {
    if (armed == 0) return 0;
    --armed;
    return ENOSPC;
  };
  {
    RuleService svc(cfg);
    ServeProtocol proto(svc);
    EXPECT_EQ(drive(proto, "open s " + prog).substr(0, 3), "ok ");
    drive(proto, "@1 assert s item 5");
    EXPECT_EQ(drive(proto, "@2 run s").substr(0, 6), "ok run");

    armed = 1;
    drive(proto, "@3 assert s item 7");
    const std::string r = drive(proto, "@4 run s");
    // A dedicated, non-retryable error class: the batch is NOT durable
    // and the session is frozen, so replaying @4 must not re-execute.
    EXPECT_EQ(r.substr(0, 15), "err journal-io:") << r;
    EXPECT_NE(r.find("No space left"), std::string::npos) << r;

    // Quarantined: open and resume both fail closed on the name (from a
    // fresh conversation — this one still holds the frozen session).
    ServeProtocol other(svc);
    EXPECT_NE(drive(other, "resume s").find("journal-corrupt"),
              std::string::npos);
    EXPECT_NE(drive(other, "open s " + prog).find("journal-corrupt"),
              std::string::npos);
  }
  // Teardown must NOT unlink the journal — the intact prefix is the
  // operator's evidence and holds every batch acked so far.
  EXPECT_TRUE(fs::exists(dir.path / "s.wal"));

  // What reached disk before the failure recovers cleanly elsewhere:
  // batch @2 (tally 5) is there, the refused batch @4 is not.
  RuleService fresh(durable_config(dir));
  const auto reports = fresh.recover_journals();
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_TRUE(reports[0].ok) << reports[0].error;
  EXPECT_EQ(reports[0].batches, 1u);
  ServeProtocol reader(fresh);
  EXPECT_EQ(drive(reader, "resume s").substr(0, 3), "ok ");
  EXPECT_NE(drive(reader, "query s tally").find("(n 5)"),
            std::string::npos);
}

// ------------------------------------- tentpole: crash-equivalence sweep

/// The client half of the exactly-once contract, emulated in-process:
/// stamped lines stay buffered until a response's `committed=K` covers
/// them, exactly like net::RetryClient.
struct EmulatedClient {
  std::vector<std::pair<std::uint64_t, std::string>> buffer;

  static std::uint64_t committed_of(const std::string& response) {
    const std::size_t at = response.find(" committed=");
    if (at == std::string::npos) return 0;
    return std::strtoull(response.c_str() + at + 11, nullptr, 10);
  }

  void sent(std::uint64_t req, const std::string& line) {
    buffer.emplace_back(req, line);
  }
  void acked(const std::string& response) {
    const std::uint64_t k = committed_of(response);
    while (!buffer.empty() && buffer.front().first <= k) {
      buffer.erase(buffer.begin());
    }
  }
};

struct ScriptLine {
  std::uint64_t req;
  std::string line;
};

std::vector<ScriptLine> make_script() {
  std::vector<ScriptLine> script;
  std::uint64_t req = 1;
  for (int v : {3, 1, 4, 1, 5, 9, 2, 6}) {
    script.push_back({req, "@" + std::to_string(req) + " assert s item " +
                               std::to_string(v)});
    ++req;
    script.push_back({req, "@" + std::to_string(req) + " run s"});
    ++req;
  }
  return script;
}

TEST(CrashEquivalence, EveryKillPointRecoversToTheUninterruptedState) {
  const std::string prog = write_program_file("sweep");
  const std::vector<ScriptLine> script = make_script();

  // Reference: the uninterrupted run.
  std::uint64_t reference = 0;
  {
    TempDir dir("sweep_ref");
    RuleService svc(durable_config(dir));
    {
      ServeProtocol proto(svc);
      ASSERT_EQ(drive(proto, "open s " + prog).substr(0, 3), "ok ");
      for (const ScriptLine& l : script) {
        ASSERT_EQ(drive(proto, l.line).substr(0, 3), "ok ") << l.line;
      }
    }
    reference = detached_fingerprint(svc, "s");
    ASSERT_NE(reference, 0u);
  }

  for (const std::uint64_t snapshot_every : {0ull, 1ull, 4ull}) {
    for (std::size_t kill = 1; kill <= script.size(); ++kill) {
      for (const bool lose_last_ack : {false, true}) {
        TempDir dir("sweep");
        EmulatedClient client;

        // Phase 1: feed the prefix, then "crash" — the service object
        // dies; only what reached the journal before each ack exists.
        {
          RuleService svc(durable_config(dir, snapshot_every));
          ServeProtocol proto(svc);
          ASSERT_EQ(drive(proto, "open s " + prog).substr(0, 3), "ok ");
          for (std::size_t i = 0; i < kill; ++i) {
            client.sent(script[i].req, script[i].line);
            const std::string r = drive(proto, script[i].line);
            ASSERT_EQ(r.substr(0, 3), "ok ") << script[i].line;
            // Losing the final ack means the client never saw its
            // committed= watermark — the line stays buffered and must
            // be replayed, where only the dedup window keeps it from
            // double-applying.
            if (!(lose_last_ack && i + 1 == kill)) client.acked(r);
          }
        }

        // Phase 2: recover, resume, replay the unacked suffix, finish.
        RuleService svc(durable_config(dir, snapshot_every));
        const auto reports = svc.recover_journals();
        ASSERT_EQ(reports.size(), 1u);
        ASSERT_TRUE(reports[0].ok)
            << reports[0].error << " snap=" << snapshot_every
            << " kill=" << kill;
        {
          ServeProtocol proto(svc);
          const std::string resumed = drive(proto, "resume s");
          ASSERT_EQ(resumed.substr(0, 3), "ok ") << resumed;
          client.acked(resumed);
          const auto replay = client.buffer;
          for (const auto& [req, line] : replay) {
            const std::string r = drive(proto, line);
            ASSERT_EQ(r.substr(0, 3), "ok ")
                << r << " replaying " << line;
            client.acked(r);
          }
          for (std::size_t i = kill; i < script.size(); ++i) {
            client.sent(script[i].req, script[i].line);
            const std::string r = drive(proto, script[i].line);
            ASSERT_EQ(r.substr(0, 3), "ok ") << script[i].line;
            client.acked(r);
          }
        }
        EXPECT_EQ(detached_fingerprint(svc, "s"), reference)
            << "snap=" << snapshot_every << " kill=" << kill
            << " lose_last_ack=" << lose_last_ack;
      }
    }
  }
}

// ----------------------------------------- shard pinning + worker modes

TEST(ShardPinning, HashIsStableAndPartitionsNames) {
  // The pinning hash is part of the on-disk contract: a journal written
  // by an N-shard server must recover onto the same shard next boot.
  // These anchors (FNV-1a) must never change across releases.
  EXPECT_EQ(shard_for_name("s", 2), 0u);
  EXPECT_EQ(shard_for_name("t", 2), 1u);
  EXPECT_EQ(shard_for_name("s", 4), 0u);
  EXPECT_EQ(shard_for_name("t", 4), 1u);
  EXPECT_EQ(shard_for_name("a", 4), 2u);
  EXPECT_EQ(shard_for_name("b", 4), 3u);
  // shards <= 1 degenerates to "everything on shard 0".
  EXPECT_EQ(shard_for_name("anything", 0), 0u);
  EXPECT_EQ(shard_for_name("anything", 1), 0u);
  // Deterministic and in range for arbitrary names.
  for (const char* name : {"", "x", "orderbook", "a-long-session-name"}) {
    const unsigned home = shard_for_name(name, 8);
    EXPECT_LT(home, 8u);
    EXPECT_EQ(home, shard_for_name(name, 8));
    EXPECT_EQ(durable_name_hash(name) % 8, home);
  }
}

TEST(DurableWorkers, AsyncWorkerModeCommitsPerSession) {
  // The journal-before-ack ordering is per session, so durable sessions
  // no longer require workers == 0. Drive two interleaved sessions
  // through a worker-pool service and require recovery to land on the
  // same fingerprints as a synchronous control run.
  const std::string prog = write_program_file("workers");
  const std::vector<int> load = {3, 1, 4, 1, 5, 9};

  auto drive_script = [&](RuleService& svc) {
    ServeProtocol proto(svc);
    EXPECT_EQ(drive(proto, "open s " + prog).substr(0, 3), "ok ");
    EXPECT_EQ(drive(proto, "open t " + prog).substr(0, 3), "ok ");
    std::uint64_t req = 1;
    for (int v : load) {
      for (const char* name : {"s", "t"}) {
        const std::string a =
            drive(proto, "@" + std::to_string(req) + " assert " + name +
                             " item " + std::to_string(v));
        EXPECT_EQ(a.substr(0, 3), "ok ") << a;
        const std::string r =
            drive(proto, "@" + std::to_string(req + 1) + " run " + name);
        EXPECT_EQ(r.substr(0, 6), "ok run") << r;
      }
      req += 2;
    }
  };

  TempDir control_dir("workers_control");
  RuleService control(durable_config(control_dir));
  drive_script(control);

  TempDir dir("workers_async");
  std::uint64_t fp_s = 0, fp_t = 0;
  {
    ServiceConfig cfg = durable_config(dir);
    cfg.workers = 2;
    RuleService svc(cfg);
    drive_script(svc);
    fp_s = detached_fingerprint(svc, "s");
    fp_t = detached_fingerprint(svc, "t");
  }
  EXPECT_EQ(fp_s, detached_fingerprint(control, "s"));
  EXPECT_EQ(fp_t, detached_fingerprint(control, "t"));

  // And what reached disk is recoverable — by another worker-pool
  // service — to the identical state.
  ServiceConfig cfg = durable_config(dir);
  cfg.workers = 2;
  RuleService svc(cfg);
  const auto reports = svc.recover_journals();
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& report : reports) {
    EXPECT_TRUE(report.ok) << report.name << ": " << report.error;
    EXPECT_EQ(report.fingerprint, report.name == "s" ? fp_s : fp_t);
  }
}

// ------------------------- tentpole: sharded crash-equivalence sweep

// The sharded analogue of the kill-point sweep: two names owned by
// DIFFERENT shards of 2 (under the pinning hash), a service per shard,
// and recovery partitioned by the same hash filter the sharded
// NetServer uses. Every kill point must recover both names to the
// uninterrupted run's fingerprints — shard ownership must never leak a
// batch across partitions or lose one inside them.
TEST(CrashEquivalence, ShardPartitionedRecoveryMatchesUninterrupted) {
  const std::string prog = write_program_file("shard_sweep");
  const std::array<const char*, 2> names = {"s", "t"};
  ASSERT_EQ(shard_for_name(names[0], 2), 0u);
  ASSERT_EQ(shard_for_name(names[1], 2), 1u);

  // The interleaved script: line i addresses names[i % 2]; request ids
  // are per session.
  struct ShardLine {
    unsigned shard;
    std::uint64_t req;
    std::string line;
  };
  std::vector<ShardLine> script;
  std::array<std::uint64_t, 2> req = {1, 1};
  for (int v : {3, 1, 4, 1, 5, 9}) {
    for (unsigned which = 0; which < 2; ++which) {
      const std::string name = names[which];
      script.push_back({which, req[which],
                        "@" + std::to_string(req[which]) + " assert " + name +
                            " item " + std::to_string(v + int(which))});
      ++req[which];
      script.push_back({which, req[which],
                        "@" + std::to_string(req[which]) + " run " + name});
      ++req[which];
    }
  }

  auto shard_filter = [](unsigned shard) {
    return [shard](const std::string& name) {
      return shard_for_name(name, 2) == shard;
    };
  };

  // Reference: the uninterrupted run, one service per shard.
  std::array<std::uint64_t, 2> reference = {0, 0};
  {
    TempDir dir0("shard_sweep_ref0"), dir1("shard_sweep_ref1");
    RuleService svc0(durable_config(dir0)), svc1(durable_config(dir1));
    const std::array<RuleService*, 2> svcs = {&svc0, &svc1};
    {
      ServeProtocol p0(svc0), p1(svc1);
      const std::array<ServeProtocol*, 2> protos = {&p0, &p1};
      for (unsigned which = 0; which < 2; ++which) {
        ASSERT_EQ(drive(*protos[which],
                        std::string("open ") + names[which] + " " + prog)
                      .substr(0, 3),
                  "ok ");
      }
      for (const ShardLine& l : script) {
        ASSERT_EQ(drive(*protos[l.shard], l.line).substr(0, 3), "ok ")
            << l.line;
      }
    }
    for (unsigned which = 0; which < 2; ++which) {
      reference[which] = detached_fingerprint(*svcs[which], names[which]);
      ASSERT_NE(reference[which], 0u);
    }
  }

  for (std::size_t kill = 1; kill <= script.size(); ++kill) {
    for (const bool lose_last_ack : {false, true}) {
      TempDir dir("shard_sweep");  // both shards journal into one dir,
                                   // exactly like one --journal-dir
      std::array<EmulatedClient, 2> clients;

      // Phase 1: feed the prefix through per-shard services, crash.
      {
        ServiceConfig cfg = durable_config(dir);
        RuleService svc0(cfg), svc1(cfg);
        ServeProtocol p0(svc0), p1(svc1);
        const std::array<ServeProtocol*, 2> protos = {&p0, &p1};
        for (unsigned which = 0; which < 2; ++which) {
          ASSERT_EQ(drive(*protos[which],
                          std::string("open ") + names[which] + " " + prog)
                        .substr(0, 3),
                    "ok ");
        }
        for (std::size_t i = 0; i < kill; ++i) {
          const ShardLine& l = script[i];
          clients[l.shard].sent(l.req, l.line);
          const std::string r = drive(*protos[l.shard], l.line);
          ASSERT_EQ(r.substr(0, 3), "ok ") << l.line;
          if (!(lose_last_ack && i + 1 == kill)) clients[l.shard].acked(r);
        }
      }

      // Phase 2: partitioned recovery — each shard's service sees only
      // its own names — then resume, replay, finish.
      ServiceConfig cfg = durable_config(dir);
      RuleService svc0(cfg), svc1(cfg);
      const std::array<RuleService*, 2> svcs = {&svc0, &svc1};
      for (unsigned which = 0; which < 2; ++which) {
        const auto reports =
            svcs[which]->recover_journals(shard_filter(which));
        ASSERT_EQ(reports.size(), 1u) << "shard " << which;
        ASSERT_TRUE(reports[0].ok) << reports[0].error;
        ASSERT_EQ(reports[0].name, names[which]);
      }
      {
        ServeProtocol p0(svc0), p1(svc1);
        const std::array<ServeProtocol*, 2> protos = {&p0, &p1};
        for (unsigned which = 0; which < 2; ++which) {
          const std::string resumed = drive(
              *protos[which], std::string("resume ") + names[which]);
          ASSERT_EQ(resumed.substr(0, 3), "ok ") << resumed;
          clients[which].acked(resumed);
          const auto replay = clients[which].buffer;
          for (const auto& [rq, line] : replay) {
            const std::string r = drive(*protos[which], line);
            ASSERT_EQ(r.substr(0, 3), "ok ") << r << " replaying " << line;
            clients[which].acked(r);
          }
        }
        for (std::size_t i = kill; i < script.size(); ++i) {
          const ShardLine& l = script[i];
          clients[l.shard].sent(l.req, l.line);
          const std::string r = drive(*protos[l.shard], l.line);
          ASSERT_EQ(r.substr(0, 3), "ok ") << l.line;
          clients[l.shard].acked(r);
        }
      }
      for (unsigned which = 0; which < 2; ++which) {
        EXPECT_EQ(detached_fingerprint(*svcs[which], names[which]),
                  reference[which])
            << "shard=" << which << " kill=" << kill
            << " lose_last_ack=" << lose_last_ack;
      }
    }
  }
}

}  // namespace
}  // namespace parulel::service
