// Unit tests: alpha memories, conflict set, and the three matchers.
//
// Matcher tests run parameterized over {rete, treat, parallel-treat,
// compiled}:
// every behaviour here is algorithm-independent, which is itself the
// property being verified.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "match/parallel_treat.hpp"
#include "match/rete.hpp"
#include "match/treat.hpp"
#include "runtime/thread_pool.hpp"

namespace parulel {
namespace {

// ---------------------------------------------------------- conflict set

Instantiation make_inst(RuleId rule, std::vector<FactId> facts) {
  Instantiation inst;
  inst.rule = rule;
  inst.facts = std::move(facts);
  return inst;
}

TEST(ConflictSet, AddAssignsSequentialIds) {
  ConflictSet cs;
  EXPECT_EQ(cs.add(make_inst(0, {1})), 0u);
  EXPECT_EQ(cs.add(make_inst(0, {2})), 1u);
  EXPECT_EQ(cs.size(), 2u);
}

TEST(ConflictSet, DuplicateKeysRejected) {
  ConflictSet cs;
  cs.add(make_inst(0, {1, 2}));
  EXPECT_EQ(cs.add(make_inst(0, {1, 2})), kInvalidInst);
  // Different rule, same facts: distinct key.
  EXPECT_NE(cs.add(make_inst(1, {1, 2})), kInvalidInst);
}

TEST(ConflictSet, RefractionBlocksReAdd) {
  ConflictSet cs;
  const InstId id = cs.add(make_inst(0, {1, 2}));
  cs.mark_fired(id);
  EXPECT_EQ(cs.size(), 0u);
  EXPECT_EQ(cs.add(make_inst(0, {1, 2})), kInvalidInst);
  EXPECT_TRUE(cs.has_fired(make_inst(0, {1, 2})));
}

TEST(ConflictSet, RemoveDoesNotRefract) {
  ConflictSet cs;
  const InstId id = cs.add(make_inst(0, {1}));
  cs.remove(id);
  EXPECT_NE(cs.add(make_inst(0, {1})), kInvalidInst);
}

TEST(ConflictSet, RemoveByFact) {
  ConflictSet cs;
  cs.add(make_inst(0, {1, 2}));
  cs.add(make_inst(0, {2, 3}));
  cs.add(make_inst(0, {3, 4}));
  std::vector<InstId> removed;
  cs.remove_by_fact(2, &removed);
  EXPECT_EQ(removed.size(), 2u);
  EXPECT_EQ(cs.size(), 1u);
}

TEST(ConflictSet, RemoveByKey) {
  ConflictSet cs;
  cs.add(make_inst(0, {1}));
  EXPECT_TRUE(cs.remove_by_key(make_inst(0, {1})));
  EXPECT_FALSE(cs.remove_by_key(make_inst(0, {1})));
  EXPECT_EQ(cs.size(), 0u);
}

TEST(ConflictSet, OfRuleFiltersAndSorts) {
  ConflictSet cs;
  cs.add(make_inst(1, {1}));
  cs.add(make_inst(0, {2}));
  const InstId dead = cs.add(make_inst(1, {3}));
  cs.add(make_inst(1, {4}));
  cs.remove(dead);
  const auto ids = cs.of_rule(1);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_LT(ids[0], ids[1]);
}

TEST(ConflictSet, AliveIdsAscending) {
  ConflictSet cs;
  for (int i = 0; i < 10; ++i) cs.add(make_inst(0, {static_cast<FactId>(i + 1)}));
  cs.remove(4);
  const auto ids = cs.alive_ids();
  EXPECT_EQ(ids.size(), 9u);
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
}

// -------------------------------------------------------------- matchers

class MatcherTest : public ::testing::TestWithParam<MatcherKind> {
 protected:
  void load(const std::string& source) {
    program_ = parse_program(source);
    wm_ = std::make_unique<WorkingMemory>(program_.schema);
    if (GetParam() == MatcherKind::ParallelTreat) {
      pool_ = std::make_unique<ThreadPool>(4);
    }
    matcher_ = make_matcher(GetParam(), program_, pool_.get());
    for (const auto& fact : program_.initial_facts) {
      wm_->assert_fact(fact.tmpl, fact.slots);
    }
    sync();
  }

  void sync() { matcher_->apply_delta(*wm_, wm_->drain_delta()); }

  FactId assert_fact(const char* tmpl, std::vector<std::int64_t> vals) {
    const TemplateId t = *program_.schema.find(program_.symbols->intern(tmpl));
    std::vector<Value> slots;
    for (auto v : vals) slots.push_back(Value::integer(v));
    return wm_->assert_fact(t, std::move(slots));
  }

  std::size_t cs_size() { return matcher_->conflict_set().size(); }

  Program program_;
  std::unique_ptr<WorkingMemory> wm_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Matcher> matcher_;
};

TEST_P(MatcherTest, SinglePatternMatches) {
  load(R"(
    (deftemplate item (slot v))
    (defrule r (item (v ?x)) => (halt))
    (deffacts f (item (v 1)) (item (v 2)) (item (v 3))))");
  EXPECT_EQ(cs_size(), 3u);
}

TEST_P(MatcherTest, ConstantAlphaFilter) {
  load(R"(
    (deftemplate item (slot v))
    (defrule r (item (v 2)) => (halt))
    (deffacts f (item (v 1)) (item (v 2)) (item (v 3))))");
  EXPECT_EQ(cs_size(), 1u);
}

TEST_P(MatcherTest, IntraPatternEquality) {
  load(R"(
    (deftemplate pair (slot a) (slot b))
    (defrule r (pair (a ?x) (b ?x)) => (halt))
    (deffacts f (pair (a 1) (b 1)) (pair (a 1) (b 2)) (pair (a 3) (b 3))))");
  EXPECT_EQ(cs_size(), 2u);
}

TEST_P(MatcherTest, TwoWayJoin) {
  load(R"(
    (deftemplate edge (slot from) (slot to))
    (defrule r (edge (from ?a) (to ?b)) (edge (from ?b) (to ?c)) => (halt))
    (deffacts f
      (edge (from 1) (to 2))
      (edge (from 2) (to 3))
      (edge (from 2) (to 4))
      (edge (from 5) (to 6))))");
  // 1->2 joins 2->3 and 2->4.
  EXPECT_EQ(cs_size(), 2u);
}

TEST_P(MatcherTest, SelfJoinFactPairs) {
  load(R"(
    (deftemplate n (slot v))
    (defrule r (n (v ?a)) (n (v ?b)) (test (< ?a ?b)) => (halt))
    (deffacts f (n (v 1)) (n (v 2)) (n (v 3))))");
  // Ordered pairs: (1,2) (1,3) (2,3).
  EXPECT_EQ(cs_size(), 3u);
}

TEST_P(MatcherTest, GuardsPruneJoins) {
  load(R"(
    (deftemplate n (slot v))
    (defrule r (n (v ?a)) (n (v ?b)) (test (== (+ ?a ?b) 10)) => (halt))
    (deffacts f (n (v 4)) (n (v 6)) (n (v 5))))");
  // (4,6), (6,4), (5,5).
  EXPECT_EQ(cs_size(), 3u);
}

TEST_P(MatcherTest, IncrementalAssertGrowsConflictSet) {
  load(R"(
    (deftemplate edge (slot from) (slot to))
    (defrule r (edge (from ?a) (to ?b)) (edge (from ?b) (to ?c)) => (halt)))");
  EXPECT_EQ(cs_size(), 0u);
  assert_fact("edge", {1, 2});
  sync();
  EXPECT_EQ(cs_size(), 0u);
  assert_fact("edge", {2, 3});
  sync();
  EXPECT_EQ(cs_size(), 1u);
  assert_fact("edge", {3, 1});
  sync();
  // 1->2->3, 2->3->1, 3->1->2.
  EXPECT_EQ(cs_size(), 3u);
}

TEST_P(MatcherTest, RetractInvalidatesInstantiations) {
  load(R"(
    (deftemplate edge (slot from) (slot to))
    (defrule r (edge (from ?a) (to ?b)) (edge (from ?b) (to ?c)) => (halt))
    (deffacts f (edge (from 1) (to 2)) (edge (from 2) (to 3))))");
  EXPECT_EQ(cs_size(), 1u);
  const auto id = wm_->find(*program_.schema.find(
                                program_.symbols->intern("edge")),
                            {Value::integer(2), Value::integer(3)});
  ASSERT_TRUE(id.has_value());
  wm_->retract(*id);
  sync();
  EXPECT_EQ(cs_size(), 0u);
}

TEST_P(MatcherTest, NegationBlocksWhenFactPresent) {
  load(R"(
    (deftemplate a (slot v))
    (deftemplate b (slot v))
    (defrule r (a (v ?x)) (not (b (v ?x))) => (halt))
    (deffacts f (a (v 1)) (a (v 2)) (b (v 1))))");
  EXPECT_EQ(cs_size(), 1u);  // only (a 2)
}

TEST_P(MatcherTest, NegationAssertRemovesInstantiation) {
  load(R"(
    (deftemplate a (slot v))
    (deftemplate b (slot v))
    (defrule r (a (v ?x)) (not (b (v ?x))) => (halt))
    (deffacts f (a (v 1))))");
  EXPECT_EQ(cs_size(), 1u);
  assert_fact("b", {1});
  sync();
  EXPECT_EQ(cs_size(), 0u);
}

TEST_P(MatcherTest, NegationRetractRestoresInstantiation) {
  load(R"(
    (deftemplate a (slot v))
    (deftemplate b (slot v))
    (defrule r (a (v ?x)) (not (b (v ?x))) => (halt))
    (deffacts f (a (v 1)) (b (v 1))))");
  EXPECT_EQ(cs_size(), 0u);
  const auto id = wm_->find(
      *program_.schema.find(program_.symbols->intern("b")),
      {Value::integer(1)});
  ASSERT_TRUE(id.has_value());
  wm_->retract(*id);
  sync();
  EXPECT_EQ(cs_size(), 1u);
}

TEST_P(MatcherTest, NegationWithLocalVariableIsExistential) {
  load(R"(
    (deftemplate a (slot v))
    (deftemplate b (slot v))
    (defrule r (a (v ?x)) (not (b (v ?y))) => (halt))
    (deffacts f (a (v 1))))");
  // No b facts at all: matches.
  EXPECT_EQ(cs_size(), 1u);
  assert_fact("b", {99});
  sync();
  // Any b fact blocks (existential local ?y).
  EXPECT_EQ(cs_size(), 0u);
}

TEST_P(MatcherTest, ExistsRequiresWitness) {
  load(R"(
    (deftemplate a (slot v))
    (deftemplate b (slot v))
    (defrule r (a (v ?x)) (exists (b (v ?x))) => (halt))
    (deffacts f (a (v 1)) (a (v 2)) (b (v 1))))");
  EXPECT_EQ(cs_size(), 1u);  // only (a 1) has a witness
}

TEST_P(MatcherTest, ExistsAssertEnablesInstantiation) {
  load(R"(
    (deftemplate a (slot v))
    (deftemplate b (slot v))
    (defrule r (a (v ?x)) (exists (b (v ?x))) => (halt))
    (deffacts f (a (v 1))))");
  EXPECT_EQ(cs_size(), 0u);
  assert_fact("b", {1});
  sync();
  EXPECT_EQ(cs_size(), 1u);
}

TEST_P(MatcherTest, ExistsRetractDisablesInstantiation) {
  load(R"(
    (deftemplate a (slot v))
    (deftemplate b (slot v))
    (defrule r (a (v ?x)) (exists (b (v ?x))) => (halt))
    (deffacts f (a (v 1)) (b (v 1))))");
  EXPECT_EQ(cs_size(), 1u);
  const auto id = wm_->find(
      *program_.schema.find(program_.symbols->intern("b")),
      {Value::integer(1)});
  ASSERT_TRUE(id.has_value());
  wm_->retract(*id);
  sync();
  EXPECT_EQ(cs_size(), 0u);
}

TEST_P(MatcherTest, ExistsSecondWitnessKeepsInstantiationAlive) {
  load(R"(
    (deftemplate a (slot v))
    (deftemplate b (slot v) (slot tag))
    (defrule r (a (v ?x)) (exists (b (v ?x))) => (halt))
    (deffacts f (a (v 1)) (b (v 1) (tag 10)) (b (v 1) (tag 20))))");
  EXPECT_EQ(cs_size(), 1u);
  // Removing ONE of the two witnesses must not disable the match.
  const TemplateId b_t = *program_.schema.find(program_.symbols->intern("b"));
  const auto id = wm_->find(b_t, {Value::integer(1), Value::integer(10)});
  ASSERT_TRUE(id.has_value());
  wm_->retract(*id);
  sync();
  EXPECT_EQ(cs_size(), 1u);
  // Removing the last witness disables it.
  const auto id2 = wm_->find(b_t, {Value::integer(1), Value::integer(20)});
  ASSERT_TRUE(id2.has_value());
  wm_->retract(*id2);
  sync();
  EXPECT_EQ(cs_size(), 0u);
}

TEST_P(MatcherTest, MixedNotAndExists) {
  load(R"(
    (deftemplate a (slot v))
    (deftemplate ok (slot v))
    (deftemplate bad (slot v))
    (defrule r (a (v ?x)) (exists (ok (v ?x))) (not (bad (v ?x))) => (halt))
    (deffacts f
      (a (v 1)) (ok (v 1))
      (a (v 2)) (ok (v 2)) (bad (v 2))
      (a (v 3))))");
  EXPECT_EQ(cs_size(), 1u);  // only (a 1): 2 is vetoed, 3 has no witness
}

TEST_P(MatcherTest, ExistsWithLocalVariableIsPureExistential) {
  load(R"(
    (deftemplate a (slot v))
    (deftemplate b (slot v))
    (defrule r (a (v ?x)) (exists (b (v ?anything))) => (halt))
    (deffacts f (a (v 1)) (a (v 2))))");
  EXPECT_EQ(cs_size(), 0u);
  assert_fact("b", {99});
  sync();
  EXPECT_EQ(cs_size(), 2u);  // any b fact satisfies both
}

TEST_P(MatcherTest, MultipleNegations) {
  load(R"(
    (deftemplate a (slot v))
    (deftemplate b (slot v))
    (deftemplate c (slot v))
    (defrule r (a (v ?x)) (not (b (v ?x))) (not (c (v ?x))) => (halt))
    (deffacts f (a (v 1)) (a (v 2)) (a (v 3)) (b (v 1)) (c (v 2))))");
  EXPECT_EQ(cs_size(), 1u);  // only (a 3)
}

TEST_P(MatcherTest, BatchDeltaWithMixedAddRemove) {
  load(R"(
    (deftemplate item (slot v))
    (defrule r (item (v ?x)) => (halt)))");
  const FactId a = assert_fact("item", {1});
  assert_fact("item", {2});
  wm_->retract(a);
  assert_fact("item", {3});
  sync();  // one delta: +1 +2 -1 +3
  EXPECT_EQ(cs_size(), 2u);
}

TEST_P(MatcherTest, DuplicateDerivationsAreDeduped) {
  // A fact matching two positions of a self-join arrives in one delta;
  // seminaive derivation sees it from both sides.
  load(R"(
    (deftemplate n (slot v))
    (defrule r (n (v ?a)) (n (v ?b)) => (halt))
    (deffacts f (n (v 1)) (n (v 2))))");
  // Pairs with repetition: (1,1) (1,2) (2,1) (2,2).
  EXPECT_EQ(cs_size(), 4u);
}

TEST_P(MatcherTest, ThreeWayJoinChain) {
  load(R"(
    (deftemplate r0 (slot a) (slot b))
    (deftemplate r1 (slot a) (slot b))
    (deftemplate r2 (slot a) (slot b))
    (defrule chain (r0 (a ?x) (b ?y)) (r1 (a ?y) (b ?z)) (r2 (a ?z) (b ?w))
      => (halt))
    (deffacts f
      (r0 (a 1) (b 2)) (r1 (a 2) (b 3)) (r2 (a 3) (b 4))
      (r1 (a 2) (b 5)) (r2 (a 5) (b 6))))");
  EXPECT_EQ(cs_size(), 2u);
}

// ------------------------------------------------------ RETE internals

TEST(ReteInternals, TokensTrackPartialMatches) {
  Program p = parse_program(R"(
    (deftemplate r0 (slot a) (slot b))
    (deftemplate r1 (slot a) (slot b))
    (defrule chain (r0 (a ?x) (b ?y)) (r1 (a ?y) (b ?z)) => (halt)))");
  WorkingMemory wm(p.schema);
  ReteMatcher rete(p.rules, p.alphas, p.schema.size());

  const TemplateId r0 = *p.schema.find(p.symbols->intern("r0"));
  const TemplateId r1 = *p.schema.find(p.symbols->intern("r1"));
  wm.assert_fact(r0, {Value::integer(1), Value::integer(2)});
  rete.apply_delta(wm, wm.drain_delta());
  // One token in memory 0, nothing downstream.
  EXPECT_EQ(rete.token_count(), 1u);
  EXPECT_EQ(rete.conflict_set().size(), 0u);

  wm.assert_fact(r1, {Value::integer(2), Value::integer(3)});
  rete.apply_delta(wm, wm.drain_delta());
  // Memory 0 token + full-match token in memory 1.
  EXPECT_EQ(rete.token_count(), 2u);
  EXPECT_EQ(rete.conflict_set().size(), 1u);

  // Retracting the r0 fact tears down both tokens and the match.
  const auto id = wm.find(r0, {Value::integer(1), Value::integer(2)});
  wm.retract(*id);
  rete.apply_delta(wm, wm.drain_delta());
  EXPECT_EQ(rete.token_count(), 0u);
  EXPECT_EQ(rete.conflict_set().size(), 0u);
  EXPECT_GE(rete.stats().tokens_deleted, 2u);
}

TEST(ReteInternals, GateCountsMultipleBlockers) {
  Program p = parse_program(R"(
    (deftemplate a (slot v))
    (deftemplate b (slot v))
    (defrule r (a (v ?x)) (not (b (v ?x))) => (halt)))");
  WorkingMemory wm(p.schema);
  ReteMatcher rete(p.rules, p.alphas, p.schema.size());

  const TemplateId a_t = *p.schema.find(p.symbols->intern("a"));
  const TemplateId b_t = *p.schema.find(p.symbols->intern("b"));
  wm.assert_fact(a_t, {Value::integer(1)});
  rete.apply_delta(wm, wm.drain_delta());
  EXPECT_EQ(rete.conflict_set().size(), 1u);

  // Two blockers: only when BOTH are gone may the match return. But the
  // first production was already fired-equivalent? No firing happened,
  // so remove/add through the gate must be exact.
  const FactId b1 = wm.assert_fact(b_t, {Value::integer(1)});
  rete.apply_delta(wm, wm.drain_delta());
  EXPECT_EQ(rete.conflict_set().size(), 0u);
  const FactId b2 = wm.assert_fact(b_t, {Value::integer(1), });
  // identical content: absorbed, no delta
  EXPECT_EQ(b2, kInvalidFact);

  // A second distinct blocker via another value slot isn't possible on
  // a 1-slot template; simulate via retract/assert cycling instead.
  wm.retract(b1);
  rete.apply_delta(wm, wm.drain_delta());
  EXPECT_EQ(rete.conflict_set().size(), 1u);
}

TEST(ReteInternals, SelfJoinFactRemovalPurgesAllTokens) {
  Program p = parse_program(R"(
    (deftemplate n (slot v))
    (defrule pair (n (v ?a)) (n (v ?b)) => (halt)))");
  WorkingMemory wm(p.schema);
  ReteMatcher rete(p.rules, p.alphas, p.schema.size());
  const TemplateId n_t = *p.schema.find(p.symbols->intern("n"));
  const FactId f1 = wm.assert_fact(n_t, {Value::integer(1)});
  wm.assert_fact(n_t, {Value::integer(2)});
  rete.apply_delta(wm, wm.drain_delta());
  EXPECT_EQ(rete.conflict_set().size(), 4u);  // (1,1)(1,2)(2,1)(2,2)
  wm.retract(f1);
  rete.apply_delta(wm, wm.drain_delta());
  EXPECT_EQ(rete.conflict_set().size(), 1u);  // (2,2)
}

TEST_P(MatcherTest, StatsCountDerivations) {
  load(R"(
    (deftemplate item (slot v))
    (defrule r (item (v ?x)) => (halt))
    (deffacts f (item (v 1)) (item (v 2))))");
  EXPECT_EQ(matcher_->stats().insts_derived, 2u);
  EXPECT_GE(matcher_->stats().deltas_processed, 1u);
}

std::string matcher_case_name(
    const ::testing::TestParamInfo<MatcherKind>& info) {
  std::string name = matcher_kind_name(info.param);
  // gtest parameter names must be alphanumeric.
  name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllMatchers, MatcherTest,
                         ::testing::Values(MatcherKind::Rete,
                                           MatcherKind::Treat,
                                           MatcherKind::ParallelTreat,
                                           MatcherKind::Compiled),
                         matcher_case_name);

}  // namespace
}  // namespace parulel
