// Unit tests: workload generators produce valid, solvable programs.
#include <gtest/gtest.h>

#include <set>

#include "engine/par_engine.hpp"
#include "engine/seq_engine.hpp"
#include "workloads/workloads.hpp"

namespace parulel {
namespace {

RunStats run_par(const Program& p, unsigned threads = 4) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  return engine.run();
}

std::size_t extent_size(const Engine& engine, const Program& p,
                        const char* tmpl) {
  return engine.wm()
      .extent(*p.schema.find(p.symbols->intern(tmpl)))
      .size();
}

TEST(Tc, GeneratesRequestedShape) {
  const auto w = workloads::make_tc(10, 20, 1);
  const Program p = parse_program(w.source);
  EXPECT_EQ(p.rules.size(), 2u);
  EXPECT_EQ(p.initial_facts.size(), 20u);
  EXPECT_FALSE(w.partition.empty());
}

TEST(Tc, SeedsAreDeterministic) {
  const auto a = workloads::make_tc(10, 20, 5);
  const auto b = workloads::make_tc(10, 20, 5);
  const auto c = workloads::make_tc(10, 20, 6);
  EXPECT_EQ(a.source, b.source);
  EXPECT_NE(a.source, c.source);
}

TEST(Tc, ClosureOfAKnownChain) {
  // Hand-built chain via the same templates the generator uses.
  const Program p = parse_program(R"(
(deftemplate edge (slot from) (slot to))
(deftemplate path (slot from) (slot to))
(defrule base (edge (from ?a) (to ?b)) (not (path (from ?a) (to ?b)))
  => (assert (path (from ?a) (to ?b))))
(defrule extend (path (from ?a) (to ?b)) (edge (from ?b) (to ?c))
  (not (path (from ?a) (to ?c)))
  => (assert (path (from ?a) (to ?c))))
(deffacts g (edge (from 0) (to 1)) (edge (from 1) (to 2))
            (edge (from 2) (to 3)) (edge (from 3) (to 4))
            (edge (from 4) (to 5))))");
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  engine.run();
  EXPECT_EQ(extent_size(engine, p, "path"), 15u);  // 5+4+3+2+1
}

TEST(Sieve, FindsExactlyThePrimes) {
  const auto w = workloads::make_sieve(50, false);
  const Program p = parse_program(w.source);
  EngineConfig cfg;
  cfg.threads = 4;
  cfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  engine.run();
  // Primes <= 50: 2 3 5 7 11 13 17 19 23 29 31 37 41 43 47 -> 15.
  EXPECT_EQ(extent_size(engine, p, "number"), 15u);
}

TEST(Sieve, MetaVariantSameResultFewerConflicts) {
  const auto plain = workloads::make_sieve(80, false);
  const auto meta = workloads::make_sieve(80, true);
  const Program p1 = parse_program(plain.source);
  const Program p2 = parse_program(meta.source);
  EXPECT_TRUE(p1.meta_rules.empty());
  EXPECT_EQ(p2.meta_rules.size(), 1u);

  EngineConfig cfg;
  cfg.threads = 4;
  cfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine e1(p1, cfg), e2(p2, cfg);
  e1.assert_initial_facts();
  e2.assert_initial_facts();
  const RunStats s1 = e1.run();
  const RunStats s2 = e2.run();
  EXPECT_EQ(e1.wm().content_fingerprint(), e2.wm().content_fingerprint());
  // The meta-rule eliminates redundant strikes entirely.
  EXPECT_GT(s1.total_write_conflicts, 0u);
  EXPECT_EQ(s2.total_write_conflicts, 0u);
  EXPECT_GT(s2.total_redactions, 0u);
  EXPECT_LT(s2.total_firings, s1.total_firings);
}

TEST(Waltz, QuiescesWithNonEmptyDomains) {
  const auto w = workloads::make_waltz(2);
  const Program p = parse_program(w.source);
  ParallelEngine engine(p, [] {
    EngineConfig cfg;
    cfg.threads = 4;
    cfg.matcher = MatcherKind::ParallelTreat;
    return cfg;
  }());
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_TRUE(stats.quiescent);
  // Some pruning happened, and every edge kept at least one label (the
  // cube is labelable).
  const std::size_t remaining = extent_size(engine, p, "domain");
  EXPECT_LT(remaining, 2u * 9u * 4u);
  EXPECT_GE(remaining, 2u * 9u);
}

TEST(Waltz, CubesAreIndependent) {
  // Per-cube surviving domain sizes identical across replication.
  const auto w1 = workloads::make_waltz(1);
  const auto w3 = workloads::make_waltz(3);
  const Program p1 = parse_program(w1.source);
  const Program p3 = parse_program(w3.source);
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine e1(p1, cfg), e3(p3, cfg);
  e1.assert_initial_facts();
  e3.assert_initial_facts();
  e1.run();
  e3.run();
  EXPECT_EQ(extent_size(e3, p3, "domain"),
            3 * extent_size(e1, p1, "domain"));
}

TEST(Manners, SeatsEveryGuest) {
  const auto w = workloads::make_manners(12, 4, 3);
  const Program p = parse_program(w.source);
  EngineConfig cfg;
  cfg.threads = 4;
  cfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_TRUE(stats.quiescent);
  EXPECT_EQ(extent_size(engine, p, "seated"), 12u);
  // One seating per cycle: inherently sequential workload.
  EXPECT_GE(stats.cycles, 12u);
}

TEST(Manners, AlternatesSexes) {
  const auto w = workloads::make_manners(8, 3, 9);
  const Program p = parse_program(w.source);
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  engine.run();
  // The surviving last-seat fact carries the final seat number == guests.
  const auto& wm = engine.wm();
  const TemplateId last_t = *p.schema.find(p.symbols->intern("last-seat"));
  ASSERT_EQ(wm.extent(last_t).size(), 1u);
  const FactView last = wm.view(wm.extent(last_t)[0]);
  EXPECT_EQ(last.slot(0), Value::integer(8));
}

TEST(Manners, SequentialEngineAlsoSolves) {
  const auto w = workloads::make_manners(10, 3, 21);
  const Program p = parse_program(w.source);
  SequentialEngine engine(p, {});
  engine.assert_initial_facts();
  const RunStats stats = engine.run();
  EXPECT_TRUE(stats.quiescent);
  EXPECT_EQ(extent_size(engine, p, "seated"), 10u);
}

TEST(Synth, JoinCountsAreExact) {
  // Tiny deterministic instance: verify out-fact count equals the brute
  // force join count by running with chain=2 over a known seed, then
  // recomputing in plain C++.
  const auto w = workloads::make_synth(2, 20, 5, 31);
  const Program p = parse_program(w.source);
  const RunStats stats = run_par(p);
  EXPECT_TRUE(stats.quiescent);

  // Re-derive expected count from the generated deffacts.
  const TemplateId r0 = *p.schema.find(p.symbols->intern("r0"));
  const TemplateId r1 = *p.schema.find(p.symbols->intern("r1"));
  std::vector<std::pair<std::int64_t, std::int64_t>> f0, f1;
  for (const auto& gf : p.initial_facts) {
    const auto a = gf.slots[0].as_int();
    const auto b = gf.slots[1].as_int();
    if (gf.tmpl == r0) f0.emplace_back(a, b);
    if (gf.tmpl == r1) f1.emplace_back(a, b);
  }
  std::set<std::pair<std::int64_t, std::int64_t>> outs;
  for (const auto& [a0, b0] : f0) {
    for (const auto& [a1, b1] : f1) {
      if (b0 == a1) outs.emplace(a0, b1);
    }
  }
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  engine.run();
  EXPECT_EQ(extent_size(engine, p, "out"), outs.size());
}

TEST(Life, RunsExactlyTheRequestedGenerations) {
  const auto w = workloads::make_life(6, 4, 5);
  const Program p = parse_program(w.source);
  const RunStats stats = run_par(p);
  EXPECT_TRUE(stats.quiescent);
  // One cycle per generation; every cell fires each generation.
  EXPECT_EQ(stats.cycles, 4u);
  EXPECT_EQ(stats.total_firings, 4u * 36u);
}

TEST(Life, BlinkerOscillates) {
  // Hand-built 5x5 board with a single vertical blinker; after one
  // generation it must be horizontal. Use the generator's rule text but
  // custom facts.
  const auto w = workloads::make_life(5, 1, 1);
  // Extract everything before (deffacts ...) and append our own board.
  const std::string rules =
      w.source.substr(0, w.source.find("(deffacts"));
  std::string facts = "(deffacts board (maxgen (g 1))\n";
  const int n = 5;
  auto id_of = [n](int x, int y) { return x * n + y; };
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      const bool alive = (y == 2 && x >= 1 && x <= 3);
      facts += "  (cell (id " + std::to_string(id_of(x, y)) +
               ") (gen 0) (alive " + (alive ? "1" : "0") + "))\n";
      facts += "  (nbrs (c " + std::to_string(id_of(x, y)) + ")";
      int k = 1;
      for (int dx = -1; dx <= 1; ++dx) {
        for (int dy = -1; dy <= 1; ++dy) {
          if (dx == 0 && dy == 0) continue;
          facts += " (n" + std::to_string(k) + " " +
                   std::to_string(id_of((x + dx + n) % n, (y + dy + n) % n)) +
                   ")";
          ++k;
        }
      }
      facts += ")\n";
    }
  }
  facts += ")\n";
  const Program p = parse_program(rules + facts);
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  engine.run();
  // Gen-1 alive cells must be exactly the horizontal blinker (2,1..3).
  const auto& wm = engine.wm();
  const TemplateId cell_t = *p.schema.find(p.symbols->intern("cell"));
  int alive_gen1 = 0;
  for (FactId id : wm.extent(cell_t)) {
    const FactView f = wm.view(id);
    if (f.slot(1) != Value::integer(1)) continue;  // gen
    if (f.slot(2) != Value::integer(1)) continue;  // alive
    ++alive_gen1;
    const auto cid = f.slot(0).as_int();
    EXPECT_EQ(cid / n, 2) << "row";
    EXPECT_GE(cid % n, 1);
    EXPECT_LE(cid % n, 3);
  }
  EXPECT_EQ(alive_gen1, 3);
}

TEST(Routing, ComputesShortestPaths) {
  const auto w = workloads::make_routing(24, 60, 7, true);
  const Program p = parse_program(w.source);
  const RunStats stats = run_par(p);
  EXPECT_TRUE(stats.quiescent);

  // Recompute shortest paths from the generated deffacts.
  const TemplateId edge_t = *p.schema.find(p.symbols->intern("edge"));
  std::vector<std::vector<std::pair<int, std::int64_t>>> adj(24);
  for (const auto& gf : p.initial_facts) {
    if (gf.tmpl != edge_t) continue;
    adj[static_cast<std::size_t>(gf.slots[0].as_int())].emplace_back(
        static_cast<int>(gf.slots[1].as_int()), gf.slots[2].as_int());
  }
  std::vector<std::int64_t> dist(24, 1000000);
  dist[0] = 0;
  for (int round = 0; round < 24; ++round) {  // Bellman-Ford
    for (int u = 0; u < 24; ++u) {
      for (const auto& [v, wgt] : adj[static_cast<std::size_t>(u)]) {
        dist[static_cast<std::size_t>(v)] =
            std::min(dist[static_cast<std::size_t>(v)],
                     dist[static_cast<std::size_t>(u)] + wgt);
      }
    }
  }

  EngineConfig cfg;
  cfg.threads = 2;
  cfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine engine(p, cfg);
  engine.assert_initial_facts();
  engine.run();
  const auto& wm = engine.wm();
  const TemplateId dist_t = *p.schema.find(p.symbols->intern("dist"));
  ASSERT_EQ(wm.extent(dist_t).size(), 24u);  // one dist fact per node
  for (FactId id : wm.extent(dist_t)) {
    const FactView f = wm.view(id);
    const auto node = static_cast<std::size_t>(f.slot(0).as_int());
    EXPECT_EQ(f.slot(1).as_int(), dist[node]) << "node " << node;
  }
}

TEST(Routing, MetaVariantConvergesWithFewerFirings) {
  const auto plain = workloads::make_routing(32, 96, 11, false);
  const auto meta = workloads::make_routing(32, 96, 11, true);
  const Program p1 = parse_program(plain.source);
  const Program p2 = parse_program(meta.source);
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.matcher = MatcherKind::ParallelTreat;
  ParallelEngine e1(p1, cfg), e2(p2, cfg);
  e1.assert_initial_facts();
  e2.assert_initial_facts();
  const RunStats s1 = e1.run();
  const RunStats s2 = e2.run();
  EXPECT_EQ(e1.wm().content_fingerprint(), e2.wm().content_fingerprint());
  EXPECT_LE(s2.total_firings, s1.total_firings);
  EXPECT_GT(s2.total_redactions, 0u);
}

TEST(Synth, ChainDepthGrowsRule) {
  const auto w = workloads::make_synth(5, 3, 3, 1);
  const Program p = parse_program(w.source);
  EXPECT_EQ(p.rules[0].positives.size(), 5u);
  EXPECT_EQ(p.schema.size(), 6u);  // r0..r4 + out
}

}  // namespace
}  // namespace parulel
