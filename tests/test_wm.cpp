// Unit tests: schema and working memory.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "wm/working_memory.hpp"

namespace parulel {
namespace {

class WmTest : public ::testing::Test {
 protected:
  WmTest() {
    edge_ = schema_.define(symbols_.intern("edge"),
                           {symbols_.intern("from"), symbols_.intern("to")});
    node_ = schema_.define(symbols_.intern("node"),
                           {symbols_.intern("id")});
  }

  std::vector<Value> pair(std::int64_t a, std::int64_t b) {
    return {Value::integer(a), Value::integer(b)};
  }

  SymbolTable symbols_;
  Schema schema_;
  TemplateId edge_ = 0;
  TemplateId node_ = 0;
};

TEST_F(WmTest, SchemaLookups) {
  EXPECT_EQ(schema_.size(), 2u);
  EXPECT_TRUE(schema_.find(symbols_.intern("edge")).has_value());
  EXPECT_FALSE(schema_.find(symbols_.intern("missing")).has_value());
  EXPECT_EQ(schema_.at(edge_).arity(), 2);
  EXPECT_EQ(schema_.at(edge_).slot_index(symbols_.intern("to")), 1);
  EXPECT_FALSE(
      schema_.at(edge_).slot_index(symbols_.intern("nope")).has_value());
}

TEST_F(WmTest, SchemaRejectsDuplicateTemplate) {
  EXPECT_THROW(schema_.define(symbols_.intern("edge"), {}), ParseError);
}

TEST_F(WmTest, SchemaRejectsDuplicateSlots) {
  const Symbol s = symbols_.intern("s");
  EXPECT_THROW(schema_.define(symbols_.intern("bad"), {s, s}), ParseError);
}

TEST_F(WmTest, AssertAssignsMonotoneIds) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  const FactId b = wm.assert_fact(edge_, pair(2, 3));
  EXPECT_NE(a, kInvalidFact);
  EXPECT_LT(a, b);
  EXPECT_EQ(wm.alive_count(), 2u);
}

TEST_F(WmTest, SetSemanticsAbsorbDuplicates) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  const FactId dup = wm.assert_fact(edge_, pair(1, 2));
  EXPECT_NE(a, kInvalidFact);
  EXPECT_EQ(dup, kInvalidFact);
  EXPECT_EQ(wm.alive_count(), 1u);
}

TEST_F(WmTest, ReassertAfterRetractGetsFreshId) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  EXPECT_TRUE(wm.retract(a));
  const FactId b = wm.assert_fact(edge_, pair(1, 2));
  EXPECT_NE(b, kInvalidFact);
  EXPECT_GT(b, a);
  EXPECT_FALSE(wm.alive(a));
  EXPECT_TRUE(wm.alive(b));
}

TEST_F(WmTest, RetractIsIdempotentAndChecked) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  EXPECT_TRUE(wm.retract(a));
  EXPECT_FALSE(wm.retract(a));
  EXPECT_FALSE(wm.retract(kInvalidFact));
  EXPECT_FALSE(wm.retract(9999));
}

TEST_F(WmTest, TombstonesRemainReadable) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(7, 8));
  wm.retract(a);
  const Fact& f = wm.fact(a);
  EXPECT_EQ(f.slots[0], Value::integer(7));
  EXPECT_EQ(f.slots[1], Value::integer(8));
}

TEST_F(WmTest, ExtentTracksAliveFactsPerTemplate) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  const FactId b = wm.assert_fact(edge_, pair(3, 4));
  wm.assert_fact(node_, {Value::integer(1)});
  EXPECT_EQ(wm.extent(edge_).size(), 2u);
  EXPECT_EQ(wm.extent(node_).size(), 1u);
  wm.retract(a);
  EXPECT_EQ(wm.extent(edge_).size(), 1u);
  EXPECT_EQ(wm.extent(edge_)[0], b);
}

TEST_F(WmTest, FindLocatesAliveContentOnly) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  EXPECT_EQ(wm.find(edge_, pair(1, 2)), a);
  EXPECT_FALSE(wm.find(edge_, pair(9, 9)).has_value());
  wm.retract(a);
  EXPECT_FALSE(wm.find(edge_, pair(1, 2)).has_value());
}

TEST_F(WmTest, ModifyIsRetractPlusAssert) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  const FactId b = wm.modify(a, {{1, Value::integer(5)}});
  EXPECT_NE(b, kInvalidFact);
  EXPECT_FALSE(wm.alive(a));
  EXPECT_TRUE(wm.alive(b));
  EXPECT_EQ(wm.fact(b).slots[0], Value::integer(1));
  EXPECT_EQ(wm.fact(b).slots[1], Value::integer(5));
}

TEST_F(WmTest, ModifyIntoExistingContentIsAbsorbed) {
  WorkingMemory wm(schema_);
  wm.assert_fact(edge_, pair(1, 5));
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  const FactId b = wm.modify(a, {{1, Value::integer(5)}});
  EXPECT_EQ(b, kInvalidFact);   // absorbed by the existing (1,5)
  EXPECT_FALSE(wm.alive(a));    // but the retract happened
  EXPECT_EQ(wm.alive_count(), 1u);
}

TEST_F(WmTest, ModifyDeadFactFails) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  wm.retract(a);
  EXPECT_EQ(wm.modify(a, {{0, Value::integer(9)}}), kInvalidFact);
}

TEST_F(WmTest, DeltaRecordsMutationsInOrder) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  const FactId b = wm.assert_fact(edge_, pair(3, 4));
  (void)wm.drain_delta();
  wm.retract(a);
  const FactId c = wm.assert_fact(edge_, pair(5, 6));
  const Delta d = wm.drain_delta();
  ASSERT_EQ(d.added.size(), 1u);
  EXPECT_EQ(d.added[0], c);
  ASSERT_EQ(d.removed.size(), 1u);
  EXPECT_EQ(d.removed[0], a);
  EXPECT_TRUE(wm.pending_delta().empty());
  (void)b;
}

TEST_F(WmTest, AssertThenRetractWithinOneDeltaCancels) {
  // A fact born and killed between drains must be invisible to matchers.
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  EXPECT_TRUE(wm.retract(a));
  const Delta d = wm.drain_delta();
  EXPECT_TRUE(d.added.empty());
  EXPECT_TRUE(d.removed.empty());
}

TEST_F(WmTest, RetractOfPreDrainFactIsRecorded) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  (void)wm.drain_delta();
  EXPECT_TRUE(wm.retract(a));
  const Delta d = wm.drain_delta();
  EXPECT_TRUE(d.added.empty());
  ASSERT_EQ(d.removed.size(), 1u);
  EXPECT_EQ(d.removed[0], a);
}

TEST_F(WmTest, DrainDeltaResetsPending) {
  WorkingMemory wm(schema_);
  wm.assert_fact(edge_, pair(1, 2));
  (void)wm.drain_delta();
  const Delta d2 = wm.drain_delta();
  EXPECT_TRUE(d2.empty());
}

TEST_F(WmTest, ArityMismatchThrows) {
  WorkingMemory wm(schema_);
  EXPECT_THROW(wm.assert_fact(edge_, {Value::integer(1)}), RuntimeError);
}

TEST_F(WmTest, ToStringRendersFact) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  EXPECT_EQ(wm.to_string(a, symbols_), "(edge (from 1) (to 2))");
}

TEST_F(WmTest, FingerprintIgnoresAssertionOrder) {
  WorkingMemory wm1(schema_);
  wm1.assert_fact(edge_, pair(1, 2));
  wm1.assert_fact(edge_, pair(3, 4));

  WorkingMemory wm2(schema_);
  wm2.assert_fact(edge_, pair(3, 4));
  wm2.assert_fact(edge_, pair(1, 2));

  EXPECT_EQ(wm1.content_fingerprint(), wm2.content_fingerprint());
}

TEST_F(WmTest, FingerprintSeesContentDifferences) {
  WorkingMemory wm1(schema_);
  wm1.assert_fact(edge_, pair(1, 2));
  WorkingMemory wm2(schema_);
  wm2.assert_fact(edge_, pair(1, 3));
  EXPECT_NE(wm1.content_fingerprint(), wm2.content_fingerprint());
}

TEST_F(WmTest, FingerprintIgnoresTombstones) {
  WorkingMemory wm1(schema_);
  wm1.assert_fact(edge_, pair(1, 2));
  const FactId doomed = wm1.assert_fact(edge_, pair(9, 9));
  wm1.retract(doomed);

  WorkingMemory wm2(schema_);
  wm2.assert_fact(edge_, pair(1, 2));

  EXPECT_EQ(wm1.content_fingerprint(), wm2.content_fingerprint());
}

TEST_F(WmTest, ManyFactsStressExtentsAndIndex) {
  WorkingMemory wm(schema_);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_NE(wm.assert_fact(edge_, pair(i, i + 1)), kInvalidFact);
  }
  EXPECT_EQ(wm.alive_count(), 5000u);
  // Retract every other fact via find().
  for (int i = 0; i < 5000; i += 2) {
    auto id = wm.find(edge_, pair(i, i + 1));
    ASSERT_TRUE(id.has_value());
    EXPECT_TRUE(wm.retract(*id));
  }
  EXPECT_EQ(wm.alive_count(), 2500u);
  EXPECT_EQ(wm.extent(edge_).size(), 2500u);
}

}  // namespace
}  // namespace parulel
