// Unit tests: schema and working memory.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "wm/working_memory.hpp"

namespace parulel {
namespace {

class WmTest : public ::testing::Test {
 protected:
  WmTest() {
    edge_ = schema_.define(symbols_.intern("edge"),
                           {symbols_.intern("from"), symbols_.intern("to")});
    node_ = schema_.define(symbols_.intern("node"),
                           {symbols_.intern("id")});
  }

  std::vector<Value> pair(std::int64_t a, std::int64_t b) {
    return {Value::integer(a), Value::integer(b)};
  }

  SymbolTable symbols_;
  Schema schema_;
  TemplateId edge_ = 0;
  TemplateId node_ = 0;
};

TEST_F(WmTest, SchemaLookups) {
  EXPECT_EQ(schema_.size(), 2u);
  EXPECT_TRUE(schema_.find(symbols_.intern("edge")).has_value());
  EXPECT_FALSE(schema_.find(symbols_.intern("missing")).has_value());
  EXPECT_EQ(schema_.at(edge_).arity(), 2);
  EXPECT_EQ(schema_.at(edge_).slot_index(symbols_.intern("to")), 1);
  EXPECT_FALSE(
      schema_.at(edge_).slot_index(symbols_.intern("nope")).has_value());
}

TEST_F(WmTest, SchemaRejectsDuplicateTemplate) {
  EXPECT_THROW(schema_.define(symbols_.intern("edge"), {}), ParseError);
}

TEST_F(WmTest, SchemaRejectsDuplicateSlots) {
  const Symbol s = symbols_.intern("s");
  EXPECT_THROW(schema_.define(symbols_.intern("bad"), {s, s}), ParseError);
}

TEST_F(WmTest, AssertAssignsMonotoneIds) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  const FactId b = wm.assert_fact(edge_, pair(2, 3));
  EXPECT_NE(a, kInvalidFact);
  EXPECT_LT(a, b);
  EXPECT_EQ(wm.alive_count(), 2u);
}

TEST_F(WmTest, SetSemanticsAbsorbDuplicates) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  const FactId dup = wm.assert_fact(edge_, pair(1, 2));
  EXPECT_NE(a, kInvalidFact);
  EXPECT_EQ(dup, kInvalidFact);
  EXPECT_EQ(wm.alive_count(), 1u);
}

TEST_F(WmTest, ReassertAfterRetractGetsFreshId) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  EXPECT_TRUE(wm.retract(a));
  const FactId b = wm.assert_fact(edge_, pair(1, 2));
  EXPECT_NE(b, kInvalidFact);
  EXPECT_GT(b, a);
  EXPECT_FALSE(wm.alive(a));
  EXPECT_TRUE(wm.alive(b));
}

TEST_F(WmTest, RetractIsIdempotentAndChecked) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  EXPECT_TRUE(wm.retract(a));
  EXPECT_FALSE(wm.retract(a));
  EXPECT_FALSE(wm.retract(kInvalidFact));
  EXPECT_FALSE(wm.retract(9999));
}

TEST_F(WmTest, TombstonesRemainReadable) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(7, 8));
  wm.retract(a);
  const FactView f = wm.view(a);
  EXPECT_EQ(f.slot(0), Value::integer(7));
  EXPECT_EQ(f.slot(1), Value::integer(8));
}

TEST_F(WmTest, ExtentTracksAliveFactsPerTemplate) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  const FactId b = wm.assert_fact(edge_, pair(3, 4));
  wm.assert_fact(node_, {Value::integer(1)});
  EXPECT_EQ(wm.extent(edge_).size(), 2u);
  EXPECT_EQ(wm.extent(node_).size(), 1u);
  wm.retract(a);
  EXPECT_EQ(wm.extent(edge_).size(), 1u);
  EXPECT_EQ(wm.extent(edge_)[0], b);
}

TEST_F(WmTest, FindLocatesAliveContentOnly) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  EXPECT_EQ(wm.find(edge_, pair(1, 2)), a);
  EXPECT_FALSE(wm.find(edge_, pair(9, 9)).has_value());
  wm.retract(a);
  EXPECT_FALSE(wm.find(edge_, pair(1, 2)).has_value());
}

TEST_F(WmTest, ModifyIsRetractPlusAssert) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  const FactId b = wm.modify(a, {{1, Value::integer(5)}});
  EXPECT_NE(b, kInvalidFact);
  EXPECT_FALSE(wm.alive(a));
  EXPECT_TRUE(wm.alive(b));
  EXPECT_EQ(wm.view(b).slot(0), Value::integer(1));
  EXPECT_EQ(wm.view(b).slot(1), Value::integer(5));
}

TEST_F(WmTest, ModifyIntoExistingContentIsAbsorbed) {
  WorkingMemory wm(schema_);
  wm.assert_fact(edge_, pair(1, 5));
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  const FactId b = wm.modify(a, {{1, Value::integer(5)}});
  EXPECT_EQ(b, kInvalidFact);   // absorbed by the existing (1,5)
  EXPECT_FALSE(wm.alive(a));    // but the retract happened
  EXPECT_EQ(wm.alive_count(), 1u);
}

TEST_F(WmTest, ModifyDeadFactFails) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  wm.retract(a);
  EXPECT_EQ(wm.modify(a, {{0, Value::integer(9)}}), kInvalidFact);
}

TEST_F(WmTest, DeltaRecordsMutationsInOrder) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  const FactId b = wm.assert_fact(edge_, pair(3, 4));
  (void)wm.drain_delta();
  wm.retract(a);
  const FactId c = wm.assert_fact(edge_, pair(5, 6));
  const Delta d = wm.drain_delta();
  ASSERT_EQ(d.added.size(), 1u);
  EXPECT_EQ(d.added[0], c);
  ASSERT_EQ(d.removed.size(), 1u);
  EXPECT_EQ(d.removed[0], a);
  EXPECT_TRUE(wm.pending_delta().empty());
  (void)b;
}

TEST_F(WmTest, AssertThenRetractWithinOneDeltaCancels) {
  // A fact born and killed between drains must be invisible to matchers.
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  EXPECT_TRUE(wm.retract(a));
  const Delta d = wm.drain_delta();
  EXPECT_TRUE(d.added.empty());
  EXPECT_TRUE(d.removed.empty());
}

TEST_F(WmTest, RetractOfPreDrainFactIsRecorded) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  (void)wm.drain_delta();
  EXPECT_TRUE(wm.retract(a));
  const Delta d = wm.drain_delta();
  EXPECT_TRUE(d.added.empty());
  ASSERT_EQ(d.removed.size(), 1u);
  EXPECT_EQ(d.removed[0], a);
}

TEST_F(WmTest, DrainDeltaResetsPending) {
  WorkingMemory wm(schema_);
  wm.assert_fact(edge_, pair(1, 2));
  (void)wm.drain_delta();
  const Delta d2 = wm.drain_delta();
  EXPECT_TRUE(d2.empty());
}

TEST_F(WmTest, ArityMismatchThrows) {
  WorkingMemory wm(schema_);
  EXPECT_THROW(wm.assert_fact(edge_, {Value::integer(1)}), RuntimeError);
}

TEST_F(WmTest, ToStringRendersFact) {
  WorkingMemory wm(schema_);
  const FactId a = wm.assert_fact(edge_, pair(1, 2));
  EXPECT_EQ(wm.to_string(a, symbols_), "(edge (from 1) (to 2))");
}

TEST_F(WmTest, FingerprintIgnoresAssertionOrder) {
  WorkingMemory wm1(schema_);
  wm1.assert_fact(edge_, pair(1, 2));
  wm1.assert_fact(edge_, pair(3, 4));

  WorkingMemory wm2(schema_);
  wm2.assert_fact(edge_, pair(3, 4));
  wm2.assert_fact(edge_, pair(1, 2));

  EXPECT_EQ(wm1.content_fingerprint(), wm2.content_fingerprint());
}

TEST_F(WmTest, FingerprintSeesContentDifferences) {
  WorkingMemory wm1(schema_);
  wm1.assert_fact(edge_, pair(1, 2));
  WorkingMemory wm2(schema_);
  wm2.assert_fact(edge_, pair(1, 3));
  EXPECT_NE(wm1.content_fingerprint(), wm2.content_fingerprint());
}

TEST_F(WmTest, FingerprintIgnoresTombstones) {
  WorkingMemory wm1(schema_);
  wm1.assert_fact(edge_, pair(1, 2));
  const FactId doomed = wm1.assert_fact(edge_, pair(9, 9));
  wm1.retract(doomed);

  WorkingMemory wm2(schema_);
  wm2.assert_fact(edge_, pair(1, 2));

  EXPECT_EQ(wm1.content_fingerprint(), wm2.content_fingerprint());
}

TEST_F(WmTest, ManyFactsStressExtentsAndIndex) {
  WorkingMemory wm(schema_);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_NE(wm.assert_fact(edge_, pair(i, i + 1)), kInvalidFact);
  }
  EXPECT_EQ(wm.alive_count(), 5000u);
  // Retract every other fact via find().
  for (int i = 0; i < 5000; i += 2) {
    auto id = wm.find(edge_, pair(i, i + 1));
    ASSERT_TRUE(id.has_value());
    EXPECT_TRUE(wm.retract(*id));
  }
  EXPECT_EQ(wm.alive_count(), 2500u);
  EXPECT_EQ(wm.extent(edge_).size(), 2500u);
}

// Struct-of-arrays round trip: drive every mutation through the handle
// API and verify the column store stays consistent with the id space.
TEST_F(WmTest, SoaRoundTripSweep) {
  WorkingMemory wm(schema_);
  // Interleave asserts across templates so rows of one template are not
  // contiguous in the store.
  std::vector<FactId> edges;
  std::vector<FactId> nodes;
  for (int i = 0; i < 200; ++i) {
    edges.push_back(wm.assert_fact(edge_, pair(i, i + 1)));
    if (i % 3 == 0) {
      nodes.push_back(wm.assert_fact(node_, {Value::integer(i)}));
    }
  }
  // Retract a third, modify a third (absorbing none).
  for (std::size_t i = 0; i < edges.size(); i += 3) wm.retract(edges[i]);
  for (std::size_t i = 1; i < edges.size(); i += 3) {
    edges[i] = wm.modify(edges[i], {{1, Value::integer(10000 + (int)i)}});
  }
  // Punch a reserved-id gap like a snapshot restore would.
  const FactId before_gap = wm.high_water();
  wm.reserve_ids(before_gap + 7);
  const FactId after_gap = wm.assert_fact(edge_, pair(-1, -2));
  EXPECT_EQ(after_gap, before_gap + 8);

  const FactStore& store = wm.store();
  // Sweep the whole id space: every id maps to a row or is a reserved
  // tombstone; rows are monotone in id (recency order is the row order).
  FactRow prev_row = kNoFactRow;
  std::size_t alive_seen = 0;
  for (FactId id = 1; id <= wm.high_water(); ++id) {
    const FactRow row = store.row_of(id);
    if (row == kNoFactRow) {
      EXPECT_FALSE(wm.alive(id));  // reserved ids never lived
      continue;
    }
    if (prev_row != kNoFactRow) {
      EXPECT_GT(row, prev_row);
    }
    prev_row = row;
    const FactView f = wm.view(id);
    EXPECT_EQ(f.id(), id);
    EXPECT_EQ(f.row(), row);
    EXPECT_EQ(f.alive(), wm.alive(id));
    if (f.alive()) ++alive_seen;
    // The cached content hash is the canonical structural hash.
    const auto slots = f.copy_slots();
    EXPECT_EQ(f.content_hash(), fact_content_hash(f.tmpl(), slots));
    // Per-slot cached hashes match Value::hash().
    for (std::size_t s = 0; s < f.slot_count(); ++s) {
      EXPECT_EQ(f.slot_hash(s), f.slot(s).hash());
    }
  }
  EXPECT_EQ(alive_seen, wm.alive_count());
  // find() agrees with the view for alive content.
  for (FactId id : wm.extent(edge_)) {
    const FactView f = wm.view(id);
    EXPECT_EQ(wm.find(edge_, f.copy_slots()), id);
  }
}

// A pre-redesign exact snapshot is a list of plain `Fact` records plus a
// high-water mark (see service/session.cpp). Replaying one into the SoA
// store must reproduce the identical fingerprint and id space — this is
// the compatibility contract for checkpoints and journal state records
// written before the layout change.
TEST_F(WmTest, ExactSnapshotReplayKeepsFingerprint) {
  WorkingMemory wm(schema_);
  std::vector<FactId> ids;
  for (int i = 0; i < 64; ++i) ids.push_back(wm.assert_fact(edge_, pair(i, i * 2)));
  for (std::size_t i = 0; i < ids.size(); i += 4) wm.retract(ids[i]);
  wm.modify(ids[1], {{0, Value::integer(-5)}});
  wm.assert_fact(node_, {Value::integer(42)});

  // Capture in the serialization-boundary format (unchanged struct).
  std::vector<Fact> snapshot;
  const FactId high_water = wm.high_water();
  for (FactId id = 1; id <= high_water; ++id) {
    if (!wm.alive(id)) continue;
    const FactView f = wm.view(id);
    snapshot.push_back(Fact{id, f.tmpl(), f.copy_slots()});
    // The Fact struct's hash and the store's cached hash are the same
    // canonical routine — checkpoint digests survive the redesign.
    EXPECT_EQ(snapshot.back().content_hash(), f.content_hash());
  }

  WorkingMemory replay(schema_);
  for (const Fact& f : snapshot) replay.assert_fact_at(f.id, f.tmpl, f.slots);
  replay.reserve_ids(high_water);

  EXPECT_EQ(replay.high_water(), wm.high_water());
  EXPECT_EQ(replay.alive_count(), wm.alive_count());
  EXPECT_EQ(replay.content_fingerprint(), wm.content_fingerprint());
  EXPECT_EQ(replay.extent(edge_).size(), wm.extent(edge_).size());
  // Replayed facts keep their original time tags, so recency-sensitive
  // consumers see the same order.
  for (FactId id : wm.extent(edge_)) {
    ASSERT_TRUE(replay.alive(id));
    EXPECT_TRUE(replay.view(id).same_content(wm.view(id)));
  }
}

}  // namespace
}  // namespace parulel
