// Unit tests: lexer, parser, analyzer, compiled expressions.
#include <gtest/gtest.h>

#include "lang/lexer.hpp"
#include "lang/program.hpp"
#include "support/error.hpp"

namespace parulel {
namespace {

// ---------------------------------------------------------------- lexer

TEST(Lexer, BasicTokens) {
  const auto toks = tokenize("(defrule r1 ?x => (halt)) ; comment\n");
  ASSERT_GE(toks.size(), 9u);
  EXPECT_EQ(toks[0].kind, TokenKind::LParen);
  EXPECT_EQ(toks[1].kind, TokenKind::Name);
  EXPECT_EQ(toks[1].text, "defrule");
  EXPECT_EQ(toks[3].kind, TokenKind::Variable);
  EXPECT_EQ(toks[3].text, "x");
  EXPECT_EQ(toks[4].kind, TokenKind::Arrow);
  EXPECT_EQ(toks.back().kind, TokenKind::End);
}

TEST(Lexer, Numbers) {
  const auto toks = tokenize("42 -17 3.5 -0.25");
  EXPECT_EQ(toks[0].kind, TokenKind::Integer);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].kind, TokenKind::Integer);
  EXPECT_EQ(toks[1].int_value, -17);
  EXPECT_EQ(toks[2].kind, TokenKind::Float);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 3.5);
  EXPECT_EQ(toks[3].kind, TokenKind::Float);
  EXPECT_DOUBLE_EQ(toks[3].float_value, -0.25);
}

TEST(Lexer, OperatorsAreNames) {
  const auto toks = tokenize("<= >= <> != + - * /");
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    EXPECT_EQ(toks[i].kind, TokenKind::Name) << i;
  }
}

TEST(Lexer, AnonymousWildcard) {
  const auto toks = tokenize("?");
  EXPECT_EQ(toks[0].kind, TokenKind::Variable);
  EXPECT_TRUE(toks[0].text.empty());
}

TEST(Lexer, Strings) {
  const auto toks = tokenize("\"hello world\"");
  EXPECT_EQ(toks[0].kind, TokenKind::String);
  EXPECT_EQ(toks[0].text, "hello world");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(tokenize("\"oops"), ParseError);
}

TEST(Lexer, CommentsRunToEndOfLine) {
  const auto toks = tokenize("; all comment\nfoo");
  EXPECT_EQ(toks[0].kind, TokenKind::Name);
  EXPECT_EQ(toks[0].text, "foo");
  EXPECT_EQ(toks[0].line, 2);
}

TEST(Lexer, TracksLineNumbers) {
  const auto toks = tokenize("a\nb\n\nc");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 4);
}

// --------------------------------------------------------------- parser

constexpr const char* kTinyProgram = R"((deftemplate edge (slot from) (slot to))
(deftemplate path (slot from) (slot to))
(defrule extend
  (declare (salience 5))
  (path (from ?a) (to ?b))
  (edge (from ?b) (to ?c))
  (not (path (from ?a) (to ?c)))
  (test (!= ?a ?c))
  =>
  (assert (path (from ?a) (to ?c))))
(deffacts init
  (edge (from 1) (to 2)))
)";

TEST(Parser, ParsesFullProgram) {
  const Program p = parse_program(kTinyProgram);
  EXPECT_EQ(p.schema.size(), 2u);
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(p.symbols->name(p.rules[0].name), "extend");
  EXPECT_EQ(p.rules[0].salience, 5);
  EXPECT_EQ(p.rules[0].positives.size(), 2u);
  EXPECT_EQ(p.rules[0].negatives.size(), 1u);
  EXPECT_EQ(p.initial_facts.size(), 1u);
}

TEST(Parser, FindRuleByName) {
  const Program p = parse_program(kTinyProgram);
  EXPECT_NE(p.find_rule("extend"), nullptr);
  EXPECT_EQ(p.find_rule("nope"), nullptr);
}

TEST(Parser, UnknownTopLevelFormThrows) {
  EXPECT_THROW(parse_program("(defwhatever x)"), ParseError);
}

TEST(Parser, FactVariableBinding) {
  const Program p = parse_program(R"(
    (deftemplate item (slot v))
    (defrule drop ?i <- (item (v ?x)) => (retract ?i)))");
  ASSERT_EQ(p.rules.size(), 1u);
  ASSERT_EQ(p.rules[0].actions.size(), 1u);
  EXPECT_EQ(p.rules[0].actions[0].kind, CompiledAction::Kind::Retract);
  EXPECT_EQ(p.rules[0].actions[0].ce_index, 0);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_program("(deftemplate t (slot a))\n(defrule r (nope (a 1)) => )");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

// ------------------------------------------------------------- analyzer

TEST(Analyzer, VariableClassification) {
  const Program p = parse_program(R"(
    (deftemplate r (slot a) (slot b))
    (defrule join
      (r (a ?x) (b ?x))        ; intra-pattern equality
      (r (a ?x) (b ?y))        ; cross-pattern join + new var
      => (assert (r (a ?x) (b ?y)))))");
  const CompiledRule& rule = p.rules[0];
  EXPECT_EQ(rule.num_lhs_vars, 2);  // x, y
  EXPECT_EQ(rule.positives[0].intra_eqs.size(), 1u);
  EXPECT_EQ(rule.positives[0].defines.size(), 1u);
  EXPECT_EQ(rule.positives[1].join_eqs.size(), 1u);
  EXPECT_EQ(rule.positives[1].defines.size(), 1u);
}

TEST(Analyzer, ConstantsBecomeAlphaTests) {
  const Program p = parse_program(R"(
    (deftemplate r (slot a) (slot b))
    (defrule pick (r (a 5) (b ?x)) => (halt)))");
  EXPECT_EQ(p.rules[0].positives[0].const_tests.size(), 1u);
  EXPECT_EQ(p.rules[0].positives[0].const_tests[0].value, Value::integer(5));
}

TEST(Analyzer, AlphaMemorySharing) {
  const Program p = parse_program(R"(
    (deftemplate r (slot a))
    (defrule r1 (r (a 5)) => (halt))
    (defrule r2 (r (a 5)) => (halt))
    (defrule r3 (r (a 6)) => (halt)))");
  EXPECT_EQ(p.rules[0].positives[0].alpha, p.rules[1].positives[0].alpha);
  EXPECT_NE(p.rules[0].positives[0].alpha, p.rules[2].positives[0].alpha);
}

TEST(Analyzer, NegatedCEsCannotBindRuleVariables) {
  // ?z first occurs in the negation: it is existential/local there, so
  // using it in the RHS must fail as unbound.
  EXPECT_THROW(parse_program(R"(
    (deftemplate r (slot a))
    (defrule bad (r (a ?x)) (not (r (a ?z)))
      => (assert (r (a ?z)))))"),
               ParseError);
}

TEST(Analyzer, TestBeforeAnyPatternThrows) {
  EXPECT_THROW(parse_program(R"(
    (deftemplate r (slot a))
    (defrule bad (test (> 1 0)) (r (a ?x)) => (halt)))"),
               ParseError);
}

TEST(Analyzer, RuleWithoutPositivesThrows) {
  EXPECT_THROW(parse_program(R"(
    (deftemplate r (slot a))
    (defrule bad (not (r (a 1))) => (halt)))"),
               ParseError);
}

TEST(Analyzer, AssertMustCoverAllSlots) {
  EXPECT_THROW(parse_program(R"(
    (deftemplate r (slot a) (slot b))
    (defrule bad (r (a ?x) (b ?y)) => (assert (r (a 1)))))"),
               ParseError);
}

TEST(Analyzer, RedactOnlyInMetaRules) {
  EXPECT_THROW(parse_program(R"(
    (deftemplate r (slot a))
    (defrule bad (r (a ?x)) => (redact ?x)))"),
               ParseError);
}

TEST(Analyzer, HaltNotAllowedInMetaRules) {
  EXPECT_THROW(parse_program(R"(
    (deftemplate r (slot a))
    (defrule obj (r (a ?x)) => (halt))
    (defmetarule bad (inst-obj (id ?i)) => (halt)))"),
               ParseError);
}

TEST(Analyzer, MetaSchemaHasIdPlusVariables) {
  const Program p = parse_program(R"(
    (deftemplate r (slot a) (slot b))
    (defrule obj (r (a ?x) (b ?y)) => (halt))
    (defmetarule m
      (inst-obj (id ?i) (x ?vx))
      (inst-obj (id ?j) (x ?vx))
      (test (< ?i ?j))
      => (redact ?j)))");
  ASSERT_EQ(p.meta_rules.size(), 1u);
  ASSERT_EQ(p.inst_templates.size(), 1u);
  const TemplateDef& meta = p.meta_schema.at(p.inst_templates[0]);
  EXPECT_EQ(p.symbols->name(meta.name), "inst-obj");
  ASSERT_EQ(meta.arity(), 3);
  EXPECT_EQ(p.symbols->name(meta.slot_names[0]), "id");
  EXPECT_EQ(p.symbols->name(meta.slot_names[1]), "x");
  EXPECT_EQ(p.symbols->name(meta.slot_names[2]), "y");
}

TEST(Analyzer, VariableNamedIdIsReservedWhenMetaRulesExist) {
  EXPECT_THROW(parse_program(R"(
    (deftemplate r (slot a))
    (defrule obj (r (a ?id)) => (halt)))"),
               ParseError);
}

TEST(Analyzer, DeffactsMustBeGround) {
  EXPECT_THROW(parse_program(R"(
    (deftemplate r (slot a))
    (deffacts f (r (a ?x))))"),
               ParseError);
}

TEST(Analyzer, DeffactsMustBeComplete) {
  EXPECT_THROW(parse_program(R"(
    (deftemplate r (slot a) (slot b))
    (deffacts f (r (a 1))))"),
               ParseError);
}

TEST(Analyzer, BindCreatesRhsLocal) {
  const Program p = parse_program(R"(
    (deftemplate r (slot a))
    (defrule b (r (a ?x)) => (bind ?y (+ ?x 1)) (assert (r (a ?y)))))");
  EXPECT_EQ(p.rules[0].num_lhs_vars, 1);
  EXPECT_EQ(p.rules[0].num_vars, 2);
}

TEST(Analyzer, BindCannotShadow) {
  EXPECT_THROW(parse_program(R"(
    (deftemplate r (slot a))
    (defrule b (r (a ?x)) => (bind ?x 1)))"),
               ParseError);
}

TEST(Analyzer, UnknownOperatorThrows) {
  EXPECT_THROW(parse_program(R"(
    (deftemplate r (slot a))
    (defrule b (r (a ?x)) (test (frobnicate ?x)) => (halt)))"),
               ParseError);
}

// ---------------------------------------------------------- expressions

class ExprTest : public ::testing::Test {
 protected:
  /// Compile a one-rule program whose guard is `expr` over slot value ?x,
  /// and evaluate that guard with ?x = `x`.
  Value eval_guard(const std::string& expr, Value x) {
    const std::string src = "(deftemplate r (slot a))\n(defrule g (r (a ?x)) "
                            "(test " + expr + ") => (halt))";
    program_ = parse_program(src);
    const CompiledExpr& guard = program_.rules[0].guards[0][0];
    const Value env[] = {x};
    return guard.eval(env);
  }

  Program program_;
};

TEST_F(ExprTest, Arithmetic) {
  EXPECT_EQ(eval_guard("(== (+ ?x 2 3) 15)", Value::integer(10)),
            Value::integer(1));
  EXPECT_EQ(eval_guard("(== (- ?x 4) 6)", Value::integer(10)),
            Value::integer(1));
  EXPECT_EQ(eval_guard("(== (* ?x ?x) 100)", Value::integer(10)),
            Value::integer(1));
  EXPECT_EQ(eval_guard("(== (/ ?x 3) 3)", Value::integer(10)),
            Value::integer(1));
  EXPECT_EQ(eval_guard("(== (mod ?x 3) 1)", Value::integer(10)),
            Value::integer(1));
  EXPECT_EQ(eval_guard("(== (min ?x 3) 3)", Value::integer(10)),
            Value::integer(1));
  EXPECT_EQ(eval_guard("(== (max ?x 3) 10)", Value::integer(10)),
            Value::integer(1));
  EXPECT_EQ(eval_guard("(== (abs (- 0 ?x)) 10)", Value::integer(10)),
            Value::integer(1));
}

TEST_F(ExprTest, IntFloatPromotion) {
  EXPECT_EQ(eval_guard("(== (+ ?x 0.5) 10.5)", Value::integer(10)),
            Value::integer(1));
  EXPECT_EQ(eval_guard("(== (/ ?x 4.0) 2.5)", Value::integer(10)),
            Value::integer(1));
}

TEST_F(ExprTest, Comparisons) {
  EXPECT_EQ(eval_guard("(< ?x 11)", Value::integer(10)), Value::integer(1));
  EXPECT_EQ(eval_guard("(<= ?x 10)", Value::integer(10)), Value::integer(1));
  EXPECT_EQ(eval_guard("(> ?x 10)", Value::integer(10)), Value::integer(0));
  EXPECT_EQ(eval_guard("(>= ?x 10)", Value::integer(10)), Value::integer(1));
}

TEST_F(ExprTest, EqualityMixesNumericKinds) {
  EXPECT_EQ(eval_guard("(== ?x 10.0)", Value::integer(10)),
            Value::integer(1));
  EXPECT_EQ(eval_guard("(!= ?x 10.0)", Value::integer(10)),
            Value::integer(0));
}

TEST_F(ExprTest, SymbolEquality) {
  // Bare names in expressions are symbolic constants.
  Program p = parse_program(R"(
    (deftemplate r (slot a))
    (defrule g (r (a ?x)) (test (== ?x hello)) => (halt)))");
  const CompiledExpr& guard = p.rules[0].guards[0][0];
  const Symbol hello = p.symbols->intern("hello");
  const Symbol other = p.symbols->intern("other");
  {
    const Value env[] = {Value::symbol(hello)};
    EXPECT_EQ(guard.eval(env), Value::integer(1));
  }
  {
    const Value env[] = {Value::symbol(other)};
    EXPECT_EQ(guard.eval(env), Value::integer(0));
  }
}

TEST_F(ExprTest, BooleanConnectives) {
  EXPECT_EQ(eval_guard("(and (> ?x 5) (< ?x 15))", Value::integer(10)),
            Value::integer(1));
  EXPECT_EQ(eval_guard("(or (> ?x 50) (< ?x 15))", Value::integer(10)),
            Value::integer(1));
  EXPECT_EQ(eval_guard("(not (> ?x 5))", Value::integer(10)),
            Value::integer(0));
}

TEST_F(ExprTest, DivisionByZeroThrows) {
  EXPECT_THROW(eval_guard("(== (/ ?x 0) 1)", Value::integer(10)),
               RuntimeError);
  EXPECT_THROW(eval_guard("(== (mod ?x 0) 1)", Value::integer(10)),
               RuntimeError);
}

TEST_F(ExprTest, ArithmeticOnSymbolThrows) {
  EXPECT_THROW(eval_guard("(== (+ ?x 1) 2)", Value::symbol(3)),
               RuntimeError);
}

TEST_F(ExprTest, OrderingOnSymbolThrows) {
  EXPECT_THROW(eval_guard("(< ?x 5)", Value::symbol(3)), RuntimeError);
}

}  // namespace
}  // namespace parulel
