// Unit tests: conflict-resolution strategies on hand-built conflict sets.
#include <gtest/gtest.h>

#include "engine/strategy.hpp"

namespace parulel {
namespace {

/// Minimal rule table: salience per rule, nothing else used by the
/// strategies except `salience`.
std::vector<CompiledRule> rules_with_salience(std::vector<int> saliences) {
  std::vector<CompiledRule> rules;
  for (std::size_t i = 0; i < saliences.size(); ++i) {
    CompiledRule r;
    r.id = static_cast<RuleId>(i);
    r.salience = saliences[i];
    rules.push_back(std::move(r));
  }
  return rules;
}

Instantiation inst(RuleId rule, std::vector<FactId> facts) {
  Instantiation i;
  i.rule = rule;
  i.facts = std::move(facts);
  return i;
}

TEST(Strategy, EmptyConflictSetSelectsNothing) {
  ConflictSet cs;
  const auto rules = rules_with_salience({0});
  Rng rng(1);
  EXPECT_EQ(select_instantiation(cs, rules, Strategy::Lex, rng),
            kInvalidInst);
}

TEST(Strategy, FirstIsFifo) {
  ConflictSet cs;
  const auto rules = rules_with_salience({0});
  const InstId a = cs.add(inst(0, {5}));
  cs.add(inst(0, {9}));
  Rng rng(1);
  EXPECT_EQ(select_instantiation(cs, rules, Strategy::First, rng), a);
}

TEST(Strategy, LexPrefersMostRecentTimeTag) {
  ConflictSet cs;
  const auto rules = rules_with_salience({0});
  cs.add(inst(0, {1, 2}));
  const InstId recent = cs.add(inst(0, {1, 9}));
  cs.add(inst(0, {3, 4}));
  Rng rng(1);
  EXPECT_EQ(select_instantiation(cs, rules, Strategy::Lex, rng), recent);
}

TEST(Strategy, LexComparesFullSortedTagVectors) {
  ConflictSet cs;
  const auto rules = rules_with_salience({0});
  // Both contain 9; second tag breaks the tie: {9,7} > {9,2}.
  cs.add(inst(0, {9, 2}));
  const InstId winner = cs.add(inst(0, {7, 9}));
  Rng rng(1);
  EXPECT_EQ(select_instantiation(cs, rules, Strategy::Lex, rng), winner);
}

TEST(Strategy, LexPrefixTieGoesToFewerConditions) {
  ConflictSet cs;
  const auto rules = rules_with_salience({0});
  const InstId shorter = cs.add(inst(0, {9}));
  cs.add(inst(0, {9, 1}));
  Rng rng(1);
  EXPECT_EQ(select_instantiation(cs, rules, Strategy::Lex, rng), shorter);
}

TEST(Strategy, MeaFirstConditionDominates) {
  ConflictSet cs;
  const auto rules = rules_with_salience({0});
  // LEX would pick {3, 99}; MEA keys on the FIRST CE's tag: 7 > 3.
  cs.add(inst(0, {3, 99}));
  const InstId mea_winner = cs.add(inst(0, {7, 8}));
  Rng rng(1);
  EXPECT_EQ(select_instantiation(cs, rules, Strategy::Mea, rng),
            mea_winner);
  Rng rng2(1);
  EXPECT_NE(select_instantiation(cs, rules, Strategy::Lex, rng2),
            mea_winner);
}

TEST(Strategy, SalienceDominatesEveryStrategy) {
  ConflictSet cs;
  const auto rules = rules_with_salience({0, 100});
  cs.add(inst(0, {99, 98}));              // recent but low salience
  const InstId important = cs.add(inst(1, {1}));  // stale, high salience
  for (Strategy s : {Strategy::First, Strategy::Lex, Strategy::Mea,
                     Strategy::Random}) {
    Rng rng(7);
    EXPECT_EQ(select_instantiation(cs, rules, s, rng), important)
        << strategy_name(s);
  }
}

TEST(Strategy, RandomIsSeedDeterministicAndInSet) {
  ConflictSet cs;
  const auto rules = rules_with_salience({0});
  for (FactId f = 1; f <= 10; ++f) cs.add(inst(0, {f}));
  Rng rng_a(42), rng_b(42);
  for (int i = 0; i < 20; ++i) {
    const InstId a = select_instantiation(cs, rules, Strategy::Random, rng_a);
    const InstId b = select_instantiation(cs, rules, Strategy::Random, rng_b);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(cs.alive(a));
  }
}

TEST(Strategy, NamesAreStable) {
  EXPECT_STREQ(strategy_name(Strategy::First), "first");
  EXPECT_STREQ(strategy_name(Strategy::Lex), "lex");
  EXPECT_STREQ(strategy_name(Strategy::Mea), "mea");
  EXPECT_STREQ(strategy_name(Strategy::Random), "random");
}

}  // namespace
}  // namespace parulel
